"""Command-line interface.

The subcommands cover the offline/online lifecycle end to end::

    repro generate social --nodes 5000 --out graph.txt
    repro info graph.txt
    repro index graph.txt --hubs 300 --workers 4 --out graph.fppv
    repro query graph.txt graph.fppv 42 --top 10 --eta 2
    repro query graph.txt graph.fppv 42 7 19
    repro query graph.txt graph.fppv 42 7 19 --top-k 10
    repro disk-query graph.txt graph.fppv 42 7 19 --clusters 12
    repro serve graph.txt graph.fppv --requests requests.jsonl
    repro serve graph.txt graph.fppv --tcp 127.0.0.1:7474 --workers 4
    repro shard-index graph.txt graph.fppv --shards 3 --out parts/
    repro serve --shard-map parts/ --tcp 127.0.0.1:7474
    repro serve graph.txt graph.fppv --shards 3 --tcp 127.0.0.1:7474
    repro stats 127.0.0.1:7474 --watch
    repro stats 127.0.0.1:7474 --prometheus
    repro trace 127.0.0.1:7474 0123456789abcdef
    repro autotune graph.txt

All online subcommands run through the :class:`~repro.serving.PPVService`
façade: ``query`` and ``disk-query`` submit their nodes as one burst (so
multi-node invocations coalesce into the batched sparse-matrix / cluster
-grouped disk engines automatically), and ``serve`` keeps a service open
over a JSONL request loop — on stdin/stdout by default (each input line
is a request, responses are emitted in request order at every blank
line or at end of input), or over the network with ``--tcp HOST:PORT``
(the :mod:`repro.server` asyncio front-end; add ``--workers N`` to
pre-fork N serving processes sharing the port).  Concurrent batches
share the scheduler's coalescing and popularity cache either way.  ``query
--top-k K`` switches to certified top-k serving: each query runs until
its top set is provably exact.  ``disk-query`` replays the Sect. 5.3
reduced-memory deployment (cluster-segmented graph, on-disk PPV index)
and reports the cluster faults and hub reads every query paid.

Graphs travel as whitespace edge lists (the SNAP convention), indexes as
the binary ``.fppv`` format of :mod:`repro.storage.ppv_store`.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from typing import Sequence

from repro.core.autotune import autotune_hub_count
from repro.core.hubs import HubPolicy, select_hubs
from repro.core.index import build_index
from repro.core.query import (
    StopAfterIterations,
    StopAfterTime,
    StopAtL1Error,
    any_of,
)
from repro.graph.analysis import graph_stats
from repro.graph.generators import bibliographic_graph, erdos_renyi_graph, social_graph
from repro.graph.io import read_edge_list, write_edge_list
from repro.serving import PPVService, QuerySpec
from repro.serving.spec import DEFAULT_TOPK_BUDGET
from repro.storage.ppv_store import load_index, save_index


def _add_generate(subparsers) -> None:
    parser = subparsers.add_parser(
        "generate", help="generate a synthetic graph and write an edge list"
    )
    parser.add_argument(
        "kind", choices=["social", "bibliographic", "erdos-renyi"]
    )
    parser.add_argument("--nodes", type=int, default=5000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", required=True, help="output edge-list path")
    parser.set_defaults(func=_cmd_generate)


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "social":
        graph = social_graph(num_nodes=args.nodes, seed=args.seed)
    elif args.kind == "bibliographic":
        # Nodes split ~1:2 authors:papers with venues at ~1%.
        authors = max(2, args.nodes // 3)
        papers = max(2, 2 * args.nodes // 3)
        venues = max(2, args.nodes // 100)
        graph = bibliographic_graph(
            num_authors=authors, num_papers=papers, num_venues=venues,
            seed=args.seed,
        ).graph
    else:
        graph = erdos_renyi_graph(args.nodes, 4.0 / args.nodes, seed=args.seed)
    write_edge_list(graph, args.out)
    print(f"wrote {graph.num_nodes} nodes / {graph.num_edges} edges to {args.out}")
    return 0


def _add_info(subparsers) -> None:
    parser = subparsers.add_parser("info", help="print graph statistics")
    parser.add_argument("graph", help="edge-list path")
    parser.add_argument("--undirected", action="store_true")
    parser.set_defaults(func=_cmd_info)


def _cmd_info(args: argparse.Namespace) -> int:
    graph = read_edge_list(args.graph, undirected=args.undirected)
    for name, value in graph_stats(graph).as_dict().items():
        print(f"{name:>28}: {value}")
    return 0


def _add_index(subparsers) -> None:
    parser = subparsers.add_parser(
        "index", help="select hubs and precompute the PPV index"
    )
    parser.add_argument("graph", help="edge-list path")
    parser.add_argument("--hubs", type=int, required=True)
    parser.add_argument(
        "--policy",
        choices=[p.value for p in HubPolicy],
        default=HubPolicy.EXPECTED_UTILITY.value,
    )
    parser.add_argument("--alpha", type=float, default=0.15)
    parser.add_argument("--epsilon", type=float, default=1e-8)
    parser.add_argument("--clip", type=float, default=1e-4)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="parallel workers for the offline build",
    )
    parser.add_argument("--undirected", action="store_true")
    parser.add_argument("--out", required=True, help="output .fppv path")
    parser.set_defaults(func=_cmd_index)


def _cmd_index(args: argparse.Namespace) -> int:
    graph = read_edge_list(args.graph, undirected=args.undirected)
    hubs = select_hubs(
        graph, args.hubs, policy=HubPolicy(args.policy), alpha=args.alpha
    )
    index = build_index(
        graph, hubs, alpha=args.alpha, epsilon=args.epsilon, clip=args.clip,
        workers=args.workers,
    )
    written = save_index(index, args.out)
    print(
        f"indexed {index.num_hubs} hubs "
        f"({index.stats.stored_entries} entries, {written / 1e6:.2f} MB on disk) "
        f"in {index.stats.build_seconds:.2f}s -> {args.out}"
    )
    return 0


def _add_query(subparsers) -> None:
    parser = subparsers.add_parser(
        "query", help="run an incremental PPV query against an index"
    )
    parser.add_argument("graph", help="edge-list path")
    parser.add_argument("index", help=".fppv index path")
    parser.add_argument("node", type=int, nargs="+")
    parser.add_argument(
        "--batch", action="store_true",
        help="legacy no-op: the serving facade coalesces all given nodes "
        "into engine batches automatically (with --time-limit, queries "
        "still run one at a time so each keeps its own time budget)",
    )
    parser.add_argument("--top", type=int, default=10)
    parser.add_argument(
        "--top-k", type=int, default=None, metavar="K",
        help="serve certified top-K: iterate until the top-K set is "
        "provably exact (--eta becomes the certificate budget, default "
        f"{DEFAULT_TOPK_BUDGET}); incompatible with --target-error and "
        "--time-limit",
    )
    parser.add_argument(
        "--eta", type=int, default=None,
        help="iteration budget (default 2; with --top-k, the certificate "
        f"budget, default {DEFAULT_TOPK_BUDGET})",
    )
    parser.add_argument(
        "--target-error", type=float, default=None,
        help="stop early once the L1 error is below this",
    )
    parser.add_argument(
        "--time-limit", type=float, default=None,
        help="stop after this many seconds",
    )
    parser.add_argument("--delta", type=float, default=0.005)
    parser.add_argument("--undirected", action="store_true")
    parser.add_argument(
        "--family", default=None,
        choices=("ppv", "top_k", "hitting", "reachability"),
        help="query family (default: top_k with --top-k, else ppv); "
        "hitting needs --target, reachability takes --max-length/--alpha",
    )
    parser.add_argument(
        "--target", type=int, default=None,
        help="hitting family: the target node whose discounted hitting "
        "probability is estimated",
    )
    parser.add_argument(
        "--beta", type=float, default=None,
        help="hitting family: per-step discount (default 0.85)",
    )
    parser.add_argument(
        "--max-levels", type=int, default=None,
        help="hitting family: hub-length levels to splice (default 16)",
    )
    parser.add_argument(
        "--max-length", type=int, default=None,
        help="reachability family: tour length cutoff (default 6, max 12)",
    )
    parser.add_argument(
        "--alpha", type=float, default=None,
        help="reachability family: teleport probability (default 0.15)",
    )
    parser.set_defaults(func=_cmd_query)


def _cmd_query(args: argparse.Namespace) -> int:
    if args.top_k is not None and (
        args.target_error is not None or args.time_limit is not None
    ):
        print(
            "error: --top-k runs until its certificate fires and cannot "
            "be combined with --target-error / --time-limit",
            file=sys.stderr,
        )
        return 2
    if args.family == "top_k" and args.top_k is None:
        print("error: --family top_k needs --top-k K", file=sys.stderr)
        return 2
    if args.family == "ppv" and args.top_k is not None:
        print(
            "error: --family ppv does not take --top-k (use --family "
            "top_k)",
            file=sys.stderr,
        )
        return 2
    if args.family == "hitting" and args.target is None:
        print(
            "error: --family hitting needs --target NODE", file=sys.stderr
        )
        return 2
    graph = read_edge_list(args.graph, undirected=args.undirected)
    index = load_index(args.index)
    if index.hub_mask.size != graph.num_nodes:
        print(
            f"error: index covers {index.hub_mask.size} nodes but the graph "
            f"has {graph.num_nodes}",
            file=sys.stderr,
        )
        return 2
    service = PPVService.open(index, graph=graph, delta=args.delta)

    if args.family == "hitting":
        params: dict = {"target": args.target}
        if args.beta is not None:
            params["beta"] = args.beta
        if args.max_levels is not None:
            params["max_levels"] = args.max_levels
        with service:
            results = service.query_many(
                [
                    QuerySpec(node, family="hitting", params=params)
                    for node in args.node
                ]
            )
        for query, result in zip(args.node, results):
            upper = result.value + result.remaining_mass
            print(
                f"query {query} -> target {args.target}: discounted "
                f"hitting probability in [{result.value:.6f}, "
                f"{upper:.6f}] after {result.iterations} levels"
            )
        return 0

    if args.family == "reachability":
        params = {}
        if args.max_length is not None:
            params["max_length"] = args.max_length
        if args.alpha is not None:
            params["alpha"] = args.alpha
        with service:
            results = service.query_many(
                [
                    QuerySpec(node, family="reachability", params=params)
                    for node in args.node
                ]
            )
        for query, result in zip(args.node, results):
            print(
                f"query {query}: tour-enumerated PPV up to length "
                f"{result.max_length} (truncation bound "
                f"{result.truncation_bound:.2e})"
            )
            for rank, (node, score) in enumerate(
                result.top_k(args.top), start=1
            ):
                print(f"{rank:4d}. node {node:8d}  score {score:.6f}")
        return 0

    if args.top_k is not None:
        budget = args.eta if args.eta is not None else DEFAULT_TOPK_BUDGET
        with service:
            results = service.query_many(
                [
                    QuerySpec(node, top_k=args.top_k, top_k_budget=budget)
                    for node in args.node
                ]
            )
        for query, result in zip(args.node, results):
            status = "certified" if result.certified else "UNCERTIFIED"
            print(
                f"query {query}: top-{args.top_k} {status} after "
                f"{result.iterations} iterations, "
                f"L1 error {result.l1_error:.4f}"
            )
            for rank, node in enumerate(result.nodes, start=1):
                print(
                    f"{rank:4d}. node {int(node):8d}  "
                    f"score {result.scores[node]:.6f}"
                )
        if not any(result.certified for result in results) and index.clip > 0:
            print(
                f"hint: no certificate fired — the index clips stored "
                f"entries at {index.clip:g}, which floors the reachable L1 "
                "error; rebuild with `index --clip 0` for tight certificates",
                file=sys.stderr,
            )
        return 0

    eta = args.eta if args.eta is not None else 2
    conditions = [StopAfterIterations(eta)]
    if args.target_error is not None:
        conditions.append(StopAtL1Error(args.target_error))
    if args.time_limit is not None:
        conditions.append(StopAfterTime(args.time_limit))
    stop = any_of(*conditions)
    with service:
        results = service.query_many(
            [QuerySpec(node, stop=stop) for node in args.node]
        )
    for result in results:
        print(
            f"query {result.query}: {result.iterations} iterations, "
            f"L1 error {result.l1_error:.4f}, {result.seconds * 1000:.1f} ms"
        )
        for rank, node in enumerate(result.top_k(args.top), start=1):
            print(
                f"{rank:4d}. node {int(node):8d}  score {result.scores[node]:.6f}"
            )
    return 0


def _add_disk_query(subparsers) -> None:
    parser = subparsers.add_parser(
        "disk-query",
        help="run queries against a disk-resident deployment (Sect. 5.3)",
    )
    parser.add_argument("graph", help="edge-list path")
    parser.add_argument("index", help=".fppv index path")
    parser.add_argument("node", type=int, nargs="+")
    parser.add_argument(
        "--batch", action="store_true",
        help="legacy no-op: the serving facade coalesces all given nodes "
        "into one cluster-grouped batch, amortising cluster faults and "
        "hub reads",
    )
    parser.add_argument(
        "--clusters", type=int, default=8,
        help="number of PPR clusters the graph is segmented into",
    )
    parser.add_argument(
        "--memory-budget", type=int, default=1,
        help="clusters resident in memory at once (the paper keeps 1)",
    )
    parser.add_argument(
        "--fault-budget", type=int, default=None,
        help="per-query cluster-fault budget (default: number of clusters)",
    )
    parser.add_argument("--top", type=int, default=10)
    parser.add_argument("--eta", type=int, default=2, help="iteration budget")
    parser.add_argument("--delta", type=float, default=0.005)
    parser.add_argument("--seed", type=int, default=0, help="clustering seed")
    parser.add_argument(
        "--workdir", default=None,
        help="directory for the cluster files (default: a temp dir)",
    )
    parser.add_argument("--undirected", action="store_true")
    parser.set_defaults(func=_cmd_disk_query)


def _cmd_disk_query(args: argparse.Namespace) -> int:
    from repro.storage import DiskGraphStore, DiskPPVStore, cluster_graph

    graph = read_edge_list(args.graph, undirected=args.undirected)
    # Validate the graph/index pair before paying for clustering and the
    # cluster files; only then segment the graph.
    cleanup_workdir = args.workdir is None
    workdir = (
        args.workdir
        if args.workdir is not None
        else tempfile.mkdtemp(prefix="fastppv_disk_")
    )
    try:
        with DiskPPVStore(args.index) as ppv_store:
            if ppv_store.num_nodes != graph.num_nodes:
                print(
                    f"error: index covers {ppv_store.num_nodes} nodes but "
                    f"the graph has {graph.num_nodes}",
                    file=sys.stderr,
                )
                return 2
            assignment = cluster_graph(graph, args.clusters, seed=args.seed)
            graph_store = DiskGraphStore(
                graph, assignment, workdir, memory_budget=args.memory_budget
            )
            stop = StopAfterIterations(args.eta)
            faults_before = graph_store.faults
            reads_before = ppv_store.reads
            with PPVService.open(
                ppv_store,
                backend="disk",
                graph_store=graph_store,
                delta=args.delta,
                fault_budget=args.fault_budget,
            ) as service:
                results = service.query_many(
                    [QuerySpec(node, stop=stop) for node in args.node]
                )
            physical_faults = graph_store.faults - faults_before
            physical_reads = ppv_store.reads - reads_before
    finally:
        if cleanup_workdir:
            shutil.rmtree(workdir, ignore_errors=True)
    for result in results:
        inner = result.result
        truncated = ", truncated" if result.truncated else ""
        print(
            f"query {inner.query}: {inner.iterations} iterations, "
            f"L1 error {inner.l1_error:.4f}, "
            f"{result.cluster_faults} faults, {result.hub_reads} hub reads"
            f"{truncated}"
        )
        for rank, node in enumerate(inner.top_k(args.top), start=1):
            print(
                f"{rank:4d}. node {int(node):8d}  score {inner.scores[node]:.6f}"
            )
    print(
        f"physical I/O for {len(results)} queries: {physical_faults} cluster "
        f"faults, {physical_reads} hub reads "
        f"({assignment.num_clusters} clusters, memory budget "
        f"{args.memory_budget})"
    )
    return 0


def _add_shard_index(subparsers) -> None:
    parser = subparsers.add_parser(
        "shard-index",
        help="partition a built index into per-shard stores for "
        "scale-out serving",
        description="Split a graph + .fppv index into N shard "
        "directories (whole PPR clusters per shard, LPT-balanced) "
        "under a partition root with a shard_map.json manifest.  Serve "
        "the result with `repro serve --shard-map ROOT --tcp ...`.",
    )
    parser.add_argument("graph", help="edge-list path")
    parser.add_argument("index", help=".fppv index path")
    parser.add_argument("--shards", type=int, required=True)
    parser.add_argument(
        "--out", required=True, help="partition root directory"
    )
    parser.add_argument(
        "--clusters", type=int, default=None,
        help="PPR clusters to segment into (default: max(8, 2*shards))",
    )
    parser.add_argument("--seed", type=int, default=0, help="clustering seed")
    parser.add_argument("--undirected", action="store_true")
    parser.set_defaults(func=_cmd_shard_index)


def _cmd_shard_index(args: argparse.Namespace) -> int:
    from repro.sharding import partition_index

    if args.shards < 1:
        print("error: --shards must be at least 1", file=sys.stderr)
        return 2
    graph = read_edge_list(args.graph, undirected=args.undirected)
    index = load_index(args.index)
    if index.hub_mask.size != graph.num_nodes:
        print(
            f"error: index covers {index.hub_mask.size} nodes but the "
            f"graph has {graph.num_nodes}",
            file=sys.stderr,
        )
        return 2
    try:
        manifest = partition_index(
            graph, index, args.shards, args.out,
            num_clusters=args.clusters, seed=args.seed,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    for entry in manifest["shards"]:
        total_mb = (entry["index_bytes"] + entry["graph_bytes"]) / 1e6
        print(
            f"shard {entry['shard']}: {entry['nodes']} nodes, "
            f"{len(entry['hubs'])} hubs, {len(entry['clusters'])} "
            f"clusters, {total_mb:.2f} MB -> {args.out}/{entry['dir']}"
        )
    print(
        f"partitioned {manifest['num_hubs']} hubs / "
        f"{manifest['num_clusters']} clusters across "
        f"{manifest['num_shards']} shards -> {args.out}/shard_map.json"
    )
    return 0


def _parse_max_delay(value: str):
    """``--max-delay`` accepts seconds or the adaptive ``auto`` mode."""
    if value == "auto":
        return value
    try:
        return float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number of seconds or 'auto', got {value!r}"
        ) from None


def _add_serve(subparsers) -> None:
    parser = subparsers.add_parser(
        "serve",
        help="serve JSONL requests over stdio or TCP via the PPVService "
        "facade",
        description="Serve JSONL requests (one object per line; see "
        "repro.server.protocol).  A request names a node "
        '({"id": 1, "node": 7}) or a weighted node set ({"nodes": [3, 9], '
        '"weights": [2, 1]}) plus optional "eta", "target_error", '
        '"time_limit", "top_k", "budget" and "top".  The default '
        "transport is the single-process stdio loop (responses in "
        "request order, emitted at every blank line and at end of "
        "input); --tcp HOST:PORT starts the asyncio network server "
        "instead, and --workers N pre-forks N serving processes on the "
        "same port.",
    )
    parser.add_argument(
        "graph", nargs="?", default=None,
        help="edge-list path (not needed with --shard-map)",
    )
    parser.add_argument(
        "index", nargs="?", default=None,
        help=".fppv index path (not needed with --shard-map)",
    )
    transport = parser.add_mutually_exclusive_group()
    transport.add_argument(
        "--stdio", action="store_true",
        help="serve the JSONL loop on stdin/stdout (the default)",
    )
    transport.add_argument(
        "--tcp", metavar="HOST:PORT", default=None,
        help="serve over TCP on this address (port 0 picks a free port)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="TCP only: pre-fork this many serving processes sharing "
        "the listen socket (escapes the GIL; needs fork support).  With "
        "--shards/--shard-map: worker processes per shard pool",
    )
    sharded = parser.add_mutually_exclusive_group()
    sharded.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="TCP only: partition the index into N shards on the fly "
        "and serve them through a shard router (exact results; see "
        "repro.sharding)",
    )
    sharded.add_argument(
        "--shard-map", default=None, metavar="ROOT",
        help="TCP only: serve an existing partition root built by "
        "`repro shard-index` through a shard router",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=256,
        help="TCP only: server-wide bound on admitted-but-unanswered "
        "requests (backpressure)",
    )
    parser.add_argument(
        "--requests", default="-",
        help="stdio only: JSONL request file, '-' for stdin (the default)",
    )
    parser.add_argument(
        "--backend", choices=["memory", "disk"], default="memory",
        help="serving backend (disk replays the Sect. 5.3 deployment)",
    )
    parser.add_argument("--top", type=int, default=10,
                        help='ranked scores per response (a request\'s own '
                        '"top" field overrides this)')
    parser.add_argument("--delta", type=float, default=0.005)
    parser.add_argument(
        "--max-batch", type=int, default=64,
        help="requests coalesced into one scheduler drain",
    )
    parser.add_argument(
        "--max-delay", type=_parse_max_delay, default=0.002,
        help="seconds a drain holds its batch open for more arrivals, "
        "or 'auto' to tune the window from the observed arrival rate",
    )
    parser.add_argument(
        "--cache-size", type=int, default=None,
        help="capacity of the popularity result cache "
        "(0 disables caching; default: the service default)",
    )
    parser.add_argument(
        "--clusters", type=int, default=8,
        help="disk backend: number of PPR clusters",
    )
    parser.add_argument(
        "--memory-budget", type=int, default=1,
        help="disk backend: clusters resident in memory at once",
    )
    parser.add_argument(
        "--fault-budget", type=int, default=None,
        help="disk backend: per-query cluster-fault budget",
    )
    parser.add_argument("--seed", type=int, default=0, help="clustering seed")
    parser.add_argument(
        "--workdir", default=None,
        help="disk backend: directory for cluster files (default: temp)",
    )
    parser.add_argument(
        "--slow-query", type=float, default=None, metavar="SECONDS",
        help="record queries slower than this to the slow-query log "
        "(served back through the stats verb, span trees included)",
    )
    parser.add_argument(
        "--trace-log", default=None, metavar="PATH",
        help="append every finished trace span to this file as JSONL",
    )
    parser.add_argument(
        "--no-obs", action="store_true",
        help="serve without the metrics registry and tracer (every "
        "observability hook collapses to one 'is None' check)",
    )
    parser.add_argument("--undirected", action="store_true")
    parser.set_defaults(func=_cmd_serve)


def _make_obs(args: argparse.Namespace):
    """The serve subcommand's Observability bundle (None with
    --no-obs).  Called inside service factories so pre-forked workers
    each build their own."""
    if args.no_obs:
        return None
    from repro.obs import Observability

    return Observability(
        slow_query_seconds=args.slow_query,
        trace_log_path=args.trace_log,
    )


def _parse_tcp_address(value: str) -> tuple[str, int]:
    host, sep, port = value.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"--tcp expects HOST:PORT (e.g. 127.0.0.1:7474), got {value!r}"
        )
    return host, int(port)


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    from contextlib import ExitStack

    from repro.server import PPVServer, ServerConfig, run_pool, serve_stdio
    from repro.storage import DiskGraphStore, DiskPPVStore, cluster_graph

    if args.workers < 1:
        print("error: --workers must be at least 1", file=sys.stderr)
        return 2
    if args.max_inflight < 1:
        print("error: --max-inflight must be at least 1", file=sys.stderr)
        return 2
    tcp_address = None
    if args.tcp is not None:
        try:
            tcp_address = _parse_tcp_address(args.tcp)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    elif args.workers != 1:
        print("error: --workers needs --tcp", file=sys.stderr)
        return 2

    if args.shards is not None or args.shard_map is not None:
        return _serve_sharded(args, tcp_address)
    if args.graph is None or args.index is None:
        print(
            "error: serve needs GRAPH and INDEX (or --shard-map ROOT)",
            file=sys.stderr,
        )
        return 2

    graph = read_edge_list(args.graph, undirected=args.undirected)
    service_kwargs: dict = {
        "max_batch": args.max_batch,
        "max_delay": args.max_delay,
    }
    if args.cache_size is not None:
        service_kwargs["cache_size"] = args.cache_size
    with ExitStack() as stack:
        if args.backend == "disk":
            # Validate the pair, then build the cluster files once; each
            # serving process opens its *own* DiskPPVStore (one shared
            # file handle across forked workers would race on seeks).
            with DiskPPVStore(args.index) as probe:
                num_covered = probe.num_nodes
            if num_covered != graph.num_nodes:
                print(
                    f"error: index covers {num_covered} nodes but "
                    f"the graph has {graph.num_nodes}",
                    file=sys.stderr,
                )
                return 2
            workdir = args.workdir
            if workdir is None:
                workdir = tempfile.mkdtemp(prefix="fastppv_serve_")
                stack.callback(shutil.rmtree, workdir, ignore_errors=True)
            assignment = cluster_graph(graph, args.clusters, seed=args.seed)
            graph_store = DiskGraphStore(
                graph, assignment, workdir, memory_budget=args.memory_budget
            )
            index_path = args.index

            def make_service() -> PPVService:
                return PPVService.open(
                    index_path,
                    backend="disk",
                    graph_store=graph_store,
                    delta=args.delta,
                    fault_budget=args.fault_budget,
                    obs=_make_obs(args),
                    **service_kwargs,
                )
        else:
            index = load_index(args.index)
            if index.hub_mask.size != graph.num_nodes:
                print(
                    f"error: index covers {index.hub_mask.size} nodes but "
                    f"the graph has {graph.num_nodes}",
                    file=sys.stderr,
                )
                return 2

            def make_service() -> PPVService:
                return PPVService.open(
                    index,
                    graph=graph,
                    delta=args.delta,
                    obs=_make_obs(args),
                    **service_kwargs,
                )

        if tcp_address is None:
            service = stack.enter_context(make_service())
            if args.requests == "-":
                source = sys.stdin
            else:
                source = stack.enter_context(
                    open(args.requests, encoding="utf-8")
                )
            serve_stdio(
                service, source, sys.stdout,
                default_top=args.top, stats_sink=sys.stderr,
            )
            return 0

        host, port = tcp_address
        config = ServerConfig(
            host=host,
            port=port,
            max_inflight=args.max_inflight,
            default_top=args.top,
        )

        def announce(address) -> None:
            print(
                f"serving {args.backend} backend on "
                f"{address[0]}:{address[1]} "
                f"({args.workers} worker{'s' if args.workers != 1 else ''})",
                file=sys.stderr,
                flush=True,
            )

        if args.workers == 1:
            service = stack.enter_context(make_service())
            server = PPVServer(service, config)
            asyncio.run(server.serve(on_ready=announce))
            return 0
        return run_pool(
            make_service, args.workers, config, announce=announce
        )


def _serve_sharded(args: argparse.Namespace, tcp_address) -> int:
    """``serve --shards N`` / ``serve --shard-map ROOT``: shard pools
    plus a router front-end on the TCP address."""
    from contextlib import ExitStack

    from repro.server import ServerConfig
    from repro.sharding import ShardRouter, partition_index

    if tcp_address is None:
        print(
            "error: sharded serving needs --tcp (the router fans out "
            "over the network)",
            file=sys.stderr,
        )
        return 2
    with ExitStack() as stack:
        if args.shard_map is not None:
            root = args.shard_map
        else:
            if args.shards < 1:
                print("error: --shards must be at least 1", file=sys.stderr)
                return 2
            if args.graph is None or args.index is None:
                print(
                    "error: --shards partitions on the fly and needs "
                    "GRAPH and INDEX (serve a prebuilt partition with "
                    "--shard-map)",
                    file=sys.stderr,
                )
                return 2
            graph = read_edge_list(args.graph, undirected=args.undirected)
            index = load_index(args.index)
            if index.hub_mask.size != graph.num_nodes:
                print(
                    f"error: index covers {index.hub_mask.size} nodes "
                    f"but the graph has {graph.num_nodes}",
                    file=sys.stderr,
                )
                return 2
            root = args.workdir
            if root is None:
                root = tempfile.mkdtemp(prefix="fastppv_shards_")
                stack.callback(shutil.rmtree, root, ignore_errors=True)
            partition_index(
                graph, index, args.shards, root,
                num_clusters=args.clusters if args.clusters != 8 else None,
                seed=args.seed,
            )
        host, port = tcp_address
        config = ServerConfig(
            host=host,
            port=port,
            max_inflight=args.max_inflight,
            default_top=args.top,
        )
        router_kwargs: dict = {
            "max_batch": args.max_batch,
            "max_delay": args.max_delay,
            "delta": args.delta,
            "fault_budget": args.fault_budget,
            "obs": False if args.no_obs else _make_obs(args),
        }
        if args.cache_size is not None:
            router_kwargs["cache_size"] = args.cache_size
        try:
            router = ShardRouter(
                root,
                workers_per_shard=args.workers,
                config=config,
                **router_kwargs,
            )
        except (FileNotFoundError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

        def announce(address) -> None:
            print(
                f"shard router on {address[0]}:{address[1]} "
                f"({router.manifest['num_shards']} shards, "
                f"{args.workers} worker"
                f"{'s' if args.workers != 1 else ''} each)",
                file=sys.stderr,
                flush=True,
            )

        return router.serve_forever(announce)


def _add_stats(subparsers) -> None:
    parser = subparsers.add_parser(
        "stats",
        help="fetch a running server's stats (counters, metrics, slow "
        "queries) over TCP",
    )
    parser.add_argument("address", metavar="HOST:PORT")
    parser.add_argument(
        "--watch", nargs="?", const=2.0, type=float, default=None,
        metavar="SECONDS",
        help="refresh every SECONDS (default 2) until interrupted",
    )
    parser.add_argument(
        "--prometheus", action="store_true",
        help="render the metrics registry snapshot in Prometheus text "
        "exposition format (needs an observability-enabled server)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="dump the raw stats payload as JSON",
    )
    parser.set_defaults(func=_cmd_stats)


def _print_metric_samples(metrics: dict) -> None:
    for name in sorted(metrics):
        entry = metrics[name]
        for sample in entry.get("samples", ()):
            labels = ""
            values = sample.get("labels") or ()
            if values:
                labels = "{%s}" % ",".join(
                    f"{key}={value!r}"
                    for key, value in zip(entry.get("labelnames", ()), values)
                )
            if "histogram" in sample:
                hist = sample["histogram"]
                print(
                    f"  {name}{labels}  count={hist.get('count', 0)} "
                    f"total={hist.get('total_seconds', 0.0):.4f}s"
                )
            else:
                print(f"  {name}{labels}  {sample.get('value')}")


def _print_stats(payload: dict) -> None:
    print(
        f"worker {payload.get('worker')}  pid {payload.get('pid')}  "
        f"version {payload.get('version')}  "
        f"uptime {payload.get('uptime_seconds', 0.0):.1f}s"
    )
    server = payload.get("server") or {}
    flat = {
        key: value
        for key, value in sorted(server.items())
        if not isinstance(value, (dict, list))
    }
    if flat:
        print("server: " + "  ".join(f"{k}={v}" for k, v in flat.items()))
    metrics = payload.get("metrics")
    if metrics:
        print("metrics:")
        _print_metric_samples(metrics)
    slow = payload.get("slow_queries")
    if slow:
        print(f"slow queries ({len(slow)}):")
        for entry in slow:
            print(
                f"  {entry.get('seconds', 0.0):.3f}s  "
                f"family={entry.get('family')}  nodes={entry.get('nodes')}  "
                f"trace={entry.get('trace', '-')}"
            )


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.server.client import PPVClient

    try:
        host, port = _parse_tcp_address(args.address)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        with PPVClient(host, port) as client:
            while True:
                payload = client.stats()
                try:
                    if args.as_json:
                        print(json.dumps(payload, indent=2, sort_keys=True))
                    elif args.prometheus:
                        metrics = payload.get("metrics")
                        if metrics is None:
                            print(
                                "error: the server exports no metrics "
                                "(started without observability)",
                                file=sys.stderr,
                            )
                            return 1
                        from repro.obs import render_prometheus

                        print(render_prometheus(metrics), end="")
                    else:
                        _print_stats(payload)
                    if args.watch is None:
                        return 0
                    sys.stdout.flush()
                    time.sleep(args.watch)
                    print("---")
                except BrokenPipeError:
                    return 0  # stdout consumer went away (e.g. | head)
    except KeyboardInterrupt:
        return 0
    except (ConnectionError, OSError) as error:
        print(f"error: cannot reach {host}:{port}: {error}", file=sys.stderr)
        return 1


def _add_trace(subparsers) -> None:
    parser = subparsers.add_parser(
        "trace",
        help="fetch recent trace spans from a running server and render "
        "the span tree",
    )
    parser.add_argument("address", metavar="HOST:PORT")
    parser.add_argument(
        "trace_id", nargs="?", default=None,
        help="show one trace (default: every span in the ring)",
    )
    parser.add_argument(
        "--limit", type=int, default=None,
        help="most recent spans to fetch per process",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="dump the raw span records as JSON",
    )
    parser.set_defaults(func=_cmd_trace)


def _print_span_tree(spans: list) -> None:
    from repro.obs.trace import span_tree

    roots, children = span_tree(spans)

    def walk(record: dict, depth: int) -> None:
        duration = record.get("duration")
        took = f"{duration * 1000:.2f} ms" if duration is not None else "?"
        attrs = record.get("attrs") or {}
        extra = "".join(f"  {k}={v}" for k, v in sorted(attrs.items()))
        print(f"{'  ' * depth}{record.get('name')}  {took}{extra}")
        for event in record.get("events", ()):
            print(f"{'  ' * (depth + 1)}! {event}")
        for child in children.get(record.get("span"), ()):
            walk(child, depth + 1)

    last_trace = None
    for root in roots:
        if root.get("trace") != last_trace:
            last_trace = root.get("trace")
            print(f"trace {last_trace}:")
        walk(root, 1)


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.server.client import PPVClient

    try:
        host, port = _parse_tcp_address(args.address)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        with PPVClient(host, port) as client:
            payload = client.trace(args.trace_id, limit=args.limit)
    except (ConnectionError, OSError) as error:
        print(f"error: cannot reach {host}:{port}: {error}", file=sys.stderr)
        return 1
    spans = payload.get("spans", [])
    if args.as_json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if not spans:
        print("no spans recorded")
        if "error" in payload:
            print(f"warning: {payload['error']}", file=sys.stderr)
        return 0
    _print_span_tree(spans)
    if "error" in payload:
        print(f"warning: {payload['error']}", file=sys.stderr)
    return 0


def _add_autotune(subparsers) -> None:
    parser = subparsers.add_parser(
        "autotune", help="probe hub counts and recommend one"
    )
    parser.add_argument("graph", help="edge-list path")
    parser.add_argument("--queries", type=int, default=15)
    parser.add_argument("--space-budget-mb", type=float, default=None)
    parser.add_argument("--undirected", action="store_true")
    parser.set_defaults(func=_cmd_autotune)


def _cmd_autotune(args: argparse.Namespace) -> int:
    graph = read_edge_list(args.graph, undirected=args.undirected)
    result = autotune_hub_count(
        graph,
        num_probe_queries=args.queries,
        space_budget_mb=args.space_budget_mb,
    )
    print(f"{'|H|':>8} {'work/query':>12} {'L1 error':>10} {'index MB':>10}")
    for probe in result.probes:
        marker = " <== best" if probe.num_hubs == result.best_num_hubs else ""
        print(
            f"{probe.num_hubs:>8} {probe.mean_work:>12.0f} "
            f"{probe.mean_l1_error:>10.4f} {probe.index_megabytes:>10.2f}"
            f"{marker}"
        )
    print(f"recommended number of hubs: {result.best_num_hubs}")
    return 0


def _add_validate(subparsers) -> None:
    parser = subparsers.add_parser(
        "validate", help="check an index's invariants against its graph"
    )
    parser.add_argument("graph", help="edge-list path")
    parser.add_argument("index", help=".fppv index path")
    parser.add_argument(
        "--sample", type=int, default=8,
        help="hub entries to recompute against the graph",
    )
    parser.add_argument("--undirected", action="store_true")
    parser.set_defaults(func=_cmd_validate)


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.core.validation import (
        validate_index_against_graph,
        validate_index_structure,
    )

    graph = read_edge_list(args.graph, undirected=args.undirected)
    index = load_index(args.index)
    report = validate_index_structure(index).merged(
        validate_index_against_graph(index, graph, sample=args.sample)
    )
    print(f"ran {report.checks} checks")
    if report.ok:
        print("index OK")
        return 0
    for problem in report.problems:
        print(f"PROBLEM: {problem}", file=sys.stderr)
    return 1


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="FastPPV: incremental, accuracy-aware Personalized PageRank",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_generate(subparsers)
    _add_info(subparsers)
    _add_index(subparsers)
    _add_query(subparsers)
    _add_disk_query(subparsers)
    _add_shard_index(subparsers)
    _add_serve(subparsers)
    _add_stats(subparsers)
    _add_trace(subparsers)
    _add_autotune(subparsers)
    _add_validate(subparsers)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
