"""Shared benchmark plumbing.

Every bench both *prints* its paper-shaped table (visible with ``-s`` or
in the pytest summary on failure) and *saves* it under
``benchmarks/results/`` so EXPERIMENTS.md can quote the latest run.
Benches with machine-readable trajectories additionally write a
``BENCH_<name>.json`` next to the text table (:func:`emit_json`) — the
CI workflow uploads both as artifacts, so run-over-run numbers can be
diffed without parsing tables.

``BENCH_SCALE`` (env var ``REPRO_BENCH_SCALE``, default 0.4) scales the
evaluation graphs; 1.0 reproduces the sizes quoted in DESIGN.md at the
cost of a few extra minutes.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.experiments.report import Table

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.4"))
BENCH_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "20"))
RESULTS_DIR = Path(__file__).resolve().parent / "results"


def emit(name: str, *tables: Table) -> None:
    """Print tables and persist them to ``benchmarks/results/<name>.txt``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    rendered = "\n\n".join(table.render() for table in tables)
    print("\n" + rendered)
    (RESULTS_DIR / f"{name}.txt").write_text(rendered + "\n", encoding="utf-8")


def emit_json(name: str, payload: dict) -> Path:
    """Merge ``payload`` into ``benchmarks/results/BENCH_<name>.json``.

    Merge (rather than overwrite) semantics let the several test
    functions of one bench module contribute sections to a single
    machine-readable record; ``bench_scale`` is stamped automatically so
    a record is never read at the wrong scale.  Returns the path.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    record: dict = {}
    if path.exists():
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            record = {}
    if record.get("bench_scale") != BENCH_SCALE:
        record = {}  # stale scale: restart the record
    record["bench_scale"] = BENCH_SCALE
    record.update(payload)
    path.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path
