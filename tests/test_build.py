"""Unit tests for GraphBuilder and from_edges."""

import pytest

from repro.graph import GraphBuilder, from_edges


class TestGraphBuilder:
    def test_integer_mode(self):
        builder = GraphBuilder(num_nodes=3)
        builder.add_edge(0, 1)
        builder.add_edge(1, 2)
        graph = builder.build()
        assert graph.num_nodes == 3
        assert sorted(graph.edges()) == [(0, 1), (1, 2)]

    def test_integer_mode_rejects_out_of_range(self):
        builder = GraphBuilder(num_nodes=2)
        with pytest.raises(ValueError):
            builder.add_edge(0, 5)

    def test_integer_mode_rejects_negative(self):
        builder = GraphBuilder(num_nodes=2)
        with pytest.raises(ValueError):
            builder.add_edge(-1, 0)

    def test_labelled_mode_interns(self):
        builder = GraphBuilder()
        builder.add_edge("alice", "bob")
        builder.add_edge("bob", "alice")
        graph = builder.build()
        assert graph.num_nodes == 2
        assert graph.node_id("alice") == 0
        assert graph.node_id("bob") == 1
        assert graph.has_edge(0, 1) and graph.has_edge(1, 0)

    def test_add_node_without_edges(self):
        builder = GraphBuilder()
        builder.add_node("lonely")
        graph = builder.build()
        assert graph.num_nodes == 1
        assert graph.num_edges == 0

    def test_deduplicates_parallel_edges(self):
        builder = GraphBuilder(num_nodes=2)
        builder.add_edge(0, 1)
        builder.add_edge(0, 1)
        builder.add_edge(0, 1)
        assert builder.num_pending_edges == 3
        graph = builder.build()
        assert graph.num_edges == 1

    def test_undirected_edge(self):
        builder = GraphBuilder(num_nodes=2)
        builder.add_undirected_edge(0, 1)
        graph = builder.build()
        assert graph.has_edge(0, 1) and graph.has_edge(1, 0)

    def test_self_loop_kept_by_default(self):
        builder = GraphBuilder(num_nodes=1)
        builder.add_edge(0, 0)
        assert builder.build().num_edges == 1

    def test_drop_self_loops(self):
        builder = GraphBuilder(num_nodes=2)
        builder.add_edge(0, 0)
        builder.add_edge(0, 1)
        graph = builder.build(drop_self_loops=True)
        assert sorted(graph.edges()) == [(0, 1)]

    def test_add_edges_bulk(self):
        builder = GraphBuilder(num_nodes=4)
        builder.add_edges([(0, 1), (1, 2), (2, 3)])
        assert builder.build().num_edges == 3

    def test_empty_labelled_build(self):
        graph = GraphBuilder().build()
        assert graph.num_nodes == 0

    def test_neighbors_sorted_after_build(self):
        builder = GraphBuilder(num_nodes=4)
        builder.add_edges([(0, 3), (0, 1), (0, 2)])
        graph = builder.build()
        assert graph.out_neighbors(0).tolist() == [1, 2, 3]


class TestFromEdges:
    def test_infers_num_nodes(self):
        graph = from_edges([(0, 4)])
        assert graph.num_nodes == 5

    def test_undirected(self):
        graph = from_edges([(0, 1)], undirected=True)
        assert graph.num_edges == 2

    def test_empty_no_num_nodes(self):
        graph = from_edges([])
        assert graph.num_nodes == 0
