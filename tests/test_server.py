"""End-to-end behaviour of the TCP server (:mod:`repro.server`):
concurrent-client equivalence on both backends, wire-level error
handling, streaming (including mid-stream disconnect), backpressure,
hot index swap under load, graceful shutdown, and the pre-fork
multi-worker CLI path."""

from __future__ import annotations

import json
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import build_index, select_hubs
from repro.server import (
    PPVClient,
    PPVServer,
    ProtocolViolation,
    ServerConfig,
    ServerError,
    protocol,
)
from repro.serving import PPVService, QuerySpec
from repro.storage import (
    DiskGraphStore,
    DiskPPVStore,
    cluster_graph,
    save_index,
)

QUERY_NODES = [3, 7, 11, 19, 23, 42, 57, 99, 123, 222, 301, 388]


@pytest.fixture(scope="module")
def certifiable_index(small_social):
    """clip=0 so top-k certificates can actually fire."""
    hubs = select_hubs(small_social, num_hubs=40)
    return build_index(small_social, hubs, clip=0.0, epsilon=1e-6)


@pytest.fixture()
def memory_service(small_social, small_social_index):
    with PPVService.open(
        small_social_index, graph=small_social, delta=1e-4
    ) as service:
        yield service


@pytest.fixture()
def memory_server(memory_service):
    server = PPVServer(memory_service)
    with server.background() as address:
        yield server, address


@pytest.fixture(scope="module")
def disk_setup(small_social, small_social_index, tmp_path_factory):
    root = tmp_path_factory.mktemp("server_disk")
    index_path = root / "index.fppv"
    save_index(small_social_index, index_path)
    assignment = cluster_graph(small_social, 5, seed=1)
    return root, small_social, assignment, index_path


def _reference_results(service, specs):
    """Direct façade results for ``specs`` (the bitwise yardstick)."""
    return service.query_many(specs)


class TestConcurrentEquivalence:
    def _hammer(self, address, per_client_specs, top):
        """One thread per client; returns {client: [result payloads]}."""
        results: dict[int, list] = {}
        errors: list[BaseException] = []

        def client_main(client_id: int, specs) -> None:
            try:
                with PPVClient(*address) as client:
                    payloads = []
                    for spec in specs:
                        if spec.top_k is not None:
                            payloads.append(
                                client.query(
                                    spec.nodes[0],
                                    top_k=spec.top_k,
                                    budget=spec.top_k_budget,
                                    top=top,
                                )
                            )
                        else:
                            nodes = (
                                list(spec.nodes)
                                if spec.is_multi
                                else spec.nodes[0]
                            )
                            payloads.append(
                                client.query(nodes, eta=2, top=top)
                            )
                    results[client_id] = payloads
            except BaseException as error:  # pragma: no cover - diagnostics
                errors.append(error)

        threads = [
            threading.Thread(target=client_main, args=(cid, specs))
            for cid, specs in enumerate(per_client_specs)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        return results

    def test_eight_concurrent_clients_memory_bitwise(self, memory_server,
                                                     memory_service):
        _server, address = memory_server
        from repro.core.query import StopAfterIterations

        stop = StopAfterIterations(2)
        per_client = [
            [QuerySpec(node, stop=stop) for node in QUERY_NODES]
            for _ in range(8)
        ]
        results = self._hammer(address, per_client, top=20)
        assert len(results) == 8
        reference = _reference_results(
            memory_service, [QuerySpec(n, stop=stop) for n in QUERY_NODES]
        )
        expected = [
            protocol.render_result(QuerySpec(n, stop=stop), r, top=20)
            for n, r in zip(QUERY_NODES, reference)
        ]
        for payloads in results.values():
            # JSON round-trips floats exactly: dict equality is bitwise
            # score equality.
            assert payloads == expected

    def test_eight_concurrent_clients_disk_bitwise(self, disk_setup):
        root, graph, assignment, index_path = disk_setup
        store_dir = root / "equivalence"
        graph_store = DiskGraphStore(graph, assignment, store_dir)
        with PPVService.open(
            str(index_path), backend="disk", graph_store=graph_store,
            delta=1e-4,
        ) as service:
            from repro.core.query import StopAfterIterations

            stop = StopAfterIterations(2)
            specs = [QuerySpec(n, stop=stop) for n in QUERY_NODES[:6]]
            reference = _reference_results(service, specs)
            expected = [
                protocol.render_result(spec, r, top=20)
                for spec, r in zip(specs, reference)
            ]
            server = PPVServer(service)
            with server.background() as address:
                results = self._hammer(
                    address, [list(specs) for _ in range(8)], top=20
                )
            for payloads in results.values():
                assert payloads == expected

    def test_certified_top_k_and_multi_node_match_direct(
        self, small_social, certifiable_index
    ):
        with PPVService.open(
            certifiable_index, graph=small_social, delta=0.0
        ) as service:
            topk_spec = QuerySpec(7, top_k=5)
            multi_spec = QuerySpec((3, 9), weights=(2.0, 1.0))
            expected_topk = protocol.render_result(
                topk_spec, service.query(topk_spec), top=10
            )
            expected_multi = protocol.render_result(
                multi_spec, service.query(multi_spec), top=10
            )
            server = PPVServer(service)
            with server.background() as address:
                with PPVClient(*address) as client:
                    got_topk = client.query(7, top_k=5)
                    got_multi = client.query(
                        [3, 9], weights=[2.0, 1.0], eta=2
                    )
        assert got_topk == expected_topk
        assert got_topk["certified"] is True
        assert got_multi == expected_multi


class TestWireErrors:
    def test_malformed_line_is_answered_not_fatal(self, memory_server):
        _server, address = memory_server
        with PPVClient(*address) as client:
            client.send_raw(b"this is not json\n")
            message = client.read_message()
            assert message["ok"] is False
            assert message["error"]["code"] == protocol.E_MALFORMED
            # The connection survives for well-formed traffic.
            assert client.ping()

    def test_unknown_verb(self, memory_server):
        _server, address = memory_server
        with PPVClient(*address) as client:
            with pytest.raises(ServerError) as excinfo:
                client.request({"verb": "frobnicate"})
            assert excinfo.value.code == protocol.E_UNKNOWN_VERB

    def test_unsupported_version_echoes_id(self, memory_server):
        _server, address = memory_server
        with PPVClient(*address) as client:
            client.send_raw(protocol.encode({"v": 99, "id": "vv", "node": 1}))
            message = client.read_message()
            assert message["id"] == "vv"
            assert message["error"]["code"] == protocol.E_UNSUPPORTED_VERSION

    def test_out_of_range_node_is_invalid(self, memory_server):
        _server, address = memory_server
        with PPVClient(*address) as client:
            with pytest.raises(ServerError) as excinfo:
                client.query(10**9)
            assert excinfo.value.code == protocol.E_INVALID

    def test_missing_node_is_invalid(self, memory_server):
        _server, address = memory_server
        with PPVClient(*address) as client:
            with pytest.raises(ServerError) as excinfo:
                client.request({"eta": 2})
            assert excinfo.value.code == protocol.E_INVALID

    def test_unusable_top_field_is_invalid(self, memory_server):
        _server, address = memory_server
        with PPVClient(*address) as client:
            with pytest.raises(ServerError) as excinfo:
                client.request({"node": 7, "top": "ten"})
            assert excinfo.value.code == protocol.E_INVALID

    def test_oversized_line_spares_pipelined_requests(self, memory_service):
        server = PPVServer(memory_service, ServerConfig(max_line_bytes=512))
        with server.background() as address:
            with PPVClient(*address) as client:
                oversized = (
                    b'{"id": "big", "pad": "' + b"x" * 2048 + b'"}\n'
                )
                follow_up = protocol.encode(
                    {"v": 1, "id": "after", "node": 3}
                )
                client.send_raw(oversized + follow_up)
                first = client.read_message()
                assert first["error"]["code"] == protocol.E_OVERSIZED
                second = client.read_message()
                assert second["id"] == "after"
                assert second["ok"] is True

    def test_payload_of_exactly_the_bound_is_served(self, memory_service):
        server = PPVServer(memory_service, ServerConfig(max_line_bytes=512))
        with server.background() as address:
            with PPVClient(*address) as client:
                body = {"v": 1, "id": "edge", "node": 3, "pad": ""}
                base = len(protocol.encode(body)) - 1  # payload, no \n
                body["pad"] = "x" * (512 - base)
                exact = protocol.encode(body)
                assert len(exact) - 1 == 512  # payload == the bound
                client.send_raw(exact)
                message = client.read_message()
                assert message["ok"] is True, message

    def test_oversized_without_newline_then_eof(self, memory_service):
        server = PPVServer(memory_service, ServerConfig(max_line_bytes=256))
        with server.background() as address:
            raw = socket.create_connection(address, timeout=10)
            try:
                raw.sendall(b"y" * 4096)
                raw.shutdown(socket.SHUT_WR)
                reply = raw.makefile("rb").readline()
                assert json.loads(reply)["error"]["code"] == (
                    protocol.E_OVERSIZED
                )
            finally:
                raw.close()

    def test_empty_lines_are_ignored(self, memory_server):
        _server, address = memory_server
        with PPVClient(*address) as client:
            client.send_raw(b"\n\n  \n")
            assert client.ping()


class TestStreaming:
    def test_stream_frames_match_service_stream(self, small_social,
                                                certifiable_index):
        with PPVService.open(
            certifiable_index, graph=small_social, delta=0.0
        ) as service:
            spec = QuerySpec(7, top_k=5)
            expected = [
                protocol.render_snapshot(snapshot, top=10)
                for snapshot in service.stream(spec)
            ]
            server = PPVServer(service)
            with server.background() as address:
                with PPVClient(*address) as client:
                    frames = list(client.stream(7, top_k=5))
        assert frames == expected
        assert frames[-1]["certified"] is True

    def test_mid_stream_disconnect_leaves_server_healthy(
        self, memory_server, memory_service
    ):
        server, address = memory_server
        client = PPVClient(*address)
        iterator = client.stream(7, eta=30)
        first = next(iterator)
        assert first["iteration"] == 0
        # Vanish mid-stream: no polite goodbye, just a dead socket.
        client.close()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if server.counters.connections_open == 0:
                break
            time.sleep(0.01)
        assert server.counters.connections_open == 0
        # The server keeps serving new clients afterwards.
        with PPVClient(*address) as client2:
            result = client2.query(7, eta=2)
            assert result["iterations"] == 2

    def test_breaking_out_of_a_stream_keeps_the_connection_usable(
        self, small_social, certifiable_index
    ):
        """Abandoning the iterator early (the README's own pattern)
        must drain the in-flight records, not leave them to be misread
        as the reply to the next request."""
        with PPVService.open(
            certifiable_index, graph=small_social, delta=0.0
        ) as service:
            server = PPVServer(service)
            with server.background() as address:
                with PPVClient(*address) as client:
                    for frame in client.stream(7, top_k=5):
                        break  # after the very first frame
                    # The same connection serves further requests.
                    result = client.query(7, eta=2)
                    assert result["iterations"] == 2
                    assert client.ping()

    def test_multi_node_stream_is_refused(self, memory_server):
        _server, address = memory_server
        with PPVClient(*address) as client:
            client.send_raw(
                protocol.encode(
                    {"v": 1, "id": "ms", "verb": "stream", "nodes": [1, 2]}
                )
            )
            message = client.read_message()
            assert message["id"] == "ms"
            assert message["error"]["code"] == protocol.E_INVALID


class TestAdmissionControl:
    def test_tiny_inflight_bound_still_serves_pipelined_burst(
        self, memory_service
    ):
        server = PPVServer(
            memory_service,
            ServerConfig(max_inflight=2, max_inflight_per_conn=1),
        )
        with server.background() as address:
            with PPVClient(*address) as client:
                # Fire 20 requests before reading anything: the server
                # must throttle through the admission bounds, not drop
                # or reorder per-id replies.
                ids = []
                for k, node in enumerate(QUERY_NODES + QUERY_NODES[:8]):
                    ids.append(f"r{k}")
                    client.send_raw(
                        protocol.encode(
                            {"v": 1, "id": f"r{k}", "node": node, "eta": 1}
                        )
                    )
                seen = set()
                for _ in ids:
                    message = client.read_message()
                    assert message["ok"] is True
                    seen.add(message["id"])
        assert seen == set(ids)

    def test_stats_counters(self, memory_server):
        _server, address = memory_server
        with PPVClient(*address) as client:
            client.query(3)
            client.query(7)
            stats = client.stats()
        assert stats["backend"] == "memory"
        assert stats["server"]["requests_total"] >= 3
        # The stats reply itself is still being rendered, so only the
        # two queries are counted as answered at snapshot time.
        assert stats["server"]["responses_total"] >= 2
        assert stats["service"]["submitted"] >= 2
        assert stats["worker"]["index"] == 0
        assert stats["worker"]["pid"] > 0


class TestHotSwap:
    def test_swap_under_load_drops_nothing(self, small_social,
                                           small_social_index, tmp_path):
        new_index = build_index(
            small_social, select_hubs(small_social, num_hubs=60)
        )
        new_path = tmp_path / "new.fppv"
        save_index(new_index, new_path)
        with PPVService.open(
            small_social_index, graph=small_social, delta=1e-4
        ) as service:
            server = PPVServer(service)
            with server.background() as address:
                failures: list = []
                answered = [0]
                stop_load = threading.Event()

                def load() -> None:
                    try:
                        with PPVClient(*address) as client:
                            while not stop_load.is_set():
                                result = client.query(7, eta=2)
                                assert result["iterations"] == 2
                                answered[0] += 1
                    except BaseException as error:
                        failures.append(error)

                loaders = [
                    threading.Thread(target=load) for _ in range(4)
                ]
                for thread in loaders:
                    thread.start()
                time.sleep(0.2)
                with PPVClient(*address) as admin:
                    swap = admin.swap_index(str(new_path))
                    assert swap["swapped"] is True
                time.sleep(0.2)
                stop_load.set()
                for thread in loaders:
                    thread.join(timeout=30)
                assert not failures, failures
                assert answered[0] > 0
                # After the swap the server answers from the new index.
                reference = PPVService.open(
                    new_index, graph=small_social, delta=1e-4
                )
                try:
                    spec = QuerySpec(7)
                    expected = protocol.render_result(
                        spec, reference.query(spec), top=10
                    )
                finally:
                    reference.close()
                with PPVClient(*address) as client:
                    assert client.query(7, eta=2) == expected
                stats_swapped = server.counters.swaps_total
        assert stats_swapped == 1

    def test_swap_on_disk_backend_is_a_structured_error(self, disk_setup):
        root, graph, assignment, index_path = disk_setup
        graph_store = DiskGraphStore(graph, assignment, root / "swap")
        with PPVService.open(
            str(index_path), backend="disk", graph_store=graph_store
        ) as service:
            server = PPVServer(service)
            with server.background() as address:
                with PPVClient(*address) as client:
                    with pytest.raises(ServerError) as excinfo:
                        client.swap_index(str(index_path))
                    assert excinfo.value.code == protocol.E_INVALID
                    # and the connection is still good
                    assert client.ping()


class TestLifecycle:
    def test_requests_after_shutdown_get_unavailable(self, memory_service):
        server = PPVServer(memory_service)
        with server.background() as address:
            with PPVClient(*address) as client:
                # Pipeline the shutdown and a query in one write: the
                # late query must get a structured refusal, not silence.
                client.send_raw(
                    protocol.encode({"v": 1, "id": "bye", "verb": "shutdown"})
                    + protocol.encode({"v": 1, "id": "late", "node": 3})
                )
                first = client.read_message()
                assert first["id"] == "bye" and first["ok"] is True
                second = client.read_message()
                assert second["id"] == "late"
                assert second["error"]["code"] == protocol.E_UNAVAILABLE

    def test_shutdown_verb_answers_then_stops(self, memory_service):
        server = PPVServer(memory_service)
        background = server.background()
        address = background.__enter__()
        try:
            with PPVClient(*address) as client:
                client.query(3)
                client.shutdown_server()
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                try:
                    probe = socket.create_connection(address, timeout=0.5)
                except OSError:
                    break
                probe.close()
                time.sleep(0.05)
            else:
                pytest.fail("listener still accepting after shutdown")
        finally:
            background.__exit__(None, None, None)

    def test_request_shutdown_is_graceful(self, memory_service):
        server = PPVServer(memory_service)
        with server.background() as address:
            with PPVClient(*address) as client:
                assert client.ping()
        # __exit__ already invoked request_shutdown and joined.
        assert server.counters.connections_open == 0


class TestMultiWorkerCLI:
    def test_two_workers_share_the_port(self, tmp_path, small_social,
                                        small_social_index):
        from repro.graph.io import write_edge_list

        graph_path = tmp_path / "graph.txt"
        index_path = tmp_path / "index.fppv"
        write_edge_list(small_social, graph_path)
        save_index(small_social_index, index_path)
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                str(graph_path), str(index_path),
                "--tcp", "127.0.0.1:0", "--workers", "2",
            ],
            stderr=subprocess.PIPE,
            env=_child_env(),
        )
        try:
            banner = process.stderr.readline().decode()
            assert "serving memory backend" in banner, banner
            address = banner.split(" on ")[1].split(" ")[0]
            host, port = address.split(":")
            port = int(port)
            pids = set()
            deadline = time.monotonic() + 60
            while len(pids) < 2 and time.monotonic() < deadline:
                with PPVClient(host, port) as client:
                    stats = client.stats()
                    pids.add(stats["worker"]["pid"])
                    result = client.query(7, eta=2)
                    assert result["iterations"] == 2
            assert len(pids) == 2, f"saw workers {pids}"
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                assert process.wait(timeout=60) == 0
            except subprocess.TimeoutExpired:  # pragma: no cover
                process.kill()
                raise


def _child_env():
    import os

    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else f"{src}{os.pathsep}{existing}"
    return env
