"""Disk-based online query processing (Sect. 5.3, Fig. 16).

Simulates the paper's reduced-memory deployment: the graph is segmented
into PPR clusters, each persisted as its own file, and **at most one
cluster's adjacency lives in memory at a time**.  Walking the prime
subgraph of a query touches neighbouring clusters; every swap is a
*cluster fault*.  Faults are counted, and the prime-subgraph search is
prematurely terminated once a fault budget (default: the number of
clusters, "generally robust" per the paper) is exhausted — trading a
little accuracy for much less I/O.

Hub prime PPVs are fetched lazily from the on-disk
:class:`~repro.storage.ppv_store.DiskPPVStore`, one random access each.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.query import (
    DEFAULT_DELTA,
    QueryResult,
    QueryState,
    StopAfterIterations,
    StoppingCondition,
)
from repro.graph.digraph import DiGraph
from repro.storage.clustering import ClusterAssignment, cluster_graph
from repro.storage.ppv_store import DiskPPVStore


class DiskGraphStore:
    """A graph segmented into per-cluster files with a bounded cache.

    Parameters
    ----------
    graph:
        The graph to segment (used only at build time).
    assignment:
        Cluster assignment from :func:`repro.storage.clustering.cluster_graph`.
    directory:
        Where cluster files are written.
    memory_budget:
        How many clusters may be memory-resident at once.  The paper's
        deployment keeps exactly one (the Fig. 16 setting, the default);
        larger budgets trade memory for fewer faults via LRU eviction —
        the ablation of ``benchmarks/bench_fig16_disk.py``.

    Notes
    -----
    Each cluster file holds the out-adjacency of its member nodes
    (``nodes``, ``offsets``, ``targets`` and per-edge step probabilities
    in the *global* id space) as an ``.npz``.  :meth:`out_edges`
    transparently swaps the owning cluster in, bumping :attr:`faults`
    when the needed cluster is not resident.
    """

    def __init__(
        self,
        graph: DiGraph,
        assignment: ClusterAssignment,
        directory: str | os.PathLike[str],
        memory_budget: int = 1,
    ) -> None:
        if memory_budget < 1:
            raise ValueError("memory_budget must be at least one cluster")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.num_nodes = graph.num_nodes
        self.labels = assignment.labels.copy()
        self.num_clusters = assignment.num_clusters
        self.memory_budget = memory_budget
        self.faults = 0
        # LRU cache: cluster id -> adjacency dict, most recent last.
        self._cache: "dict[int, dict[int, tuple[np.ndarray, np.ndarray]]]" = {}
        self._bytes_per_cluster: list[int] = []
        edge_probabilities = graph.edge_probabilities
        for cluster in range(assignment.num_clusters):
            nodes = assignment.members(cluster)
            probs = [
                edge_probabilities[graph.indptr[int(u)] : graph.indptr[int(u) + 1]]
                for u in nodes
            ]
            adjacency = {
                "nodes": nodes,
                "offsets": np.concatenate(
                    ([0], np.cumsum(graph.out_degrees[nodes]))
                ),
                "targets": np.concatenate(
                    [graph.out_neighbors(int(u)) for u in nodes]
                    or [np.empty(0, dtype=np.int32)]
                ),
                "probs": np.concatenate(probs or [np.empty(0)]),
            }
            path = self._cluster_path(cluster)
            np.savez(path, **adjacency)
            self._bytes_per_cluster.append(path.stat().st_size)
        manifest = {
            "num_nodes": self.num_nodes,
            "num_clusters": self.num_clusters,
        }
        (self.directory / "manifest.json").write_text(json.dumps(manifest))

    def _cluster_path(self, cluster: int) -> Path:
        return self.directory / f"cluster_{cluster:05d}.npz"

    @property
    def largest_cluster_bytes(self) -> int:
        """On-disk size of the biggest cluster — the minimum working set."""
        return max(self._bytes_per_cluster)

    @property
    def total_bytes(self) -> int:
        """Total on-disk size of all clusters."""
        return sum(self._bytes_per_cluster)

    def cluster_of(self, node: int) -> int:
        """Cluster id owning ``node``."""
        return int(self.labels[node])

    def _load_cluster(self, cluster: int) -> dict:
        with np.load(self._cluster_path(cluster)) as data:
            nodes = data["nodes"]
            offsets = data["offsets"]
            targets = data["targets"]
            probs = data["probs"]
        adjacency = {}
        for position, node in enumerate(nodes):
            start, end = offsets[position], offsets[position + 1]
            adjacency[int(node)] = (targets[start:end], probs[start:end])
        return adjacency

    def out_edges(self, node: int) -> tuple[np.ndarray, np.ndarray]:
        """``(targets, step probabilities)`` of ``node``, swapping its
        cluster in (with LRU eviction) if needed."""
        cluster = self.cluster_of(node)
        adjacency = self._cache.get(cluster)
        if adjacency is None:
            self.faults += 1
            adjacency = self._load_cluster(cluster)
            while len(self._cache) >= self.memory_budget:
                oldest = next(iter(self._cache))
                del self._cache[oldest]
        else:
            del self._cache[cluster]  # re-insert as most recent
        self._cache[cluster] = adjacency
        return adjacency[node]

    def out_neighbors(self, node: int) -> np.ndarray:
        """Out-neighbours of ``node``, swapping its cluster in if needed."""
        return self.out_edges(node)[0]

    def _resident_cluster_hint(self) -> int:
        """Most recently used cluster id, or -1 when the cache is cold.

        The disk engine prefers draining the resident cluster first, so
        exposing the MRU entry avoids an unnecessary swap.
        """
        if not self._cache:
            return -1
        return next(reversed(self._cache))


@dataclass
class DiskQueryResult:
    """A :class:`QueryResult` plus the I/O accounting of Fig. 16."""

    result: QueryResult
    cluster_faults: int
    hub_reads: int
    truncated: bool

    @property
    def scores(self) -> np.ndarray:
        """Estimated PPV (delegates to the inner result)."""
        return self.result.scores

    @property
    def seconds(self) -> float:
        """Wall-clock query time (delegates to the inner result)."""
        return self.result.seconds


class DiskFastPPV:
    """FastPPV online processing against disk-resident graph and index.

    Parameters
    ----------
    graph_store:
        Cluster-segmented graph (:class:`DiskGraphStore`).
    ppv_store:
        On-disk PPV index (:class:`DiskPPVStore`).
    delta:
        Border-hub expansion threshold (as in the in-memory engine).
    fault_budget:
        Prime-subgraph search stops expanding new nodes once this many
        cluster faults occurred within one query; defaults to the number
        of clusters (the paper's robust choice).
    """

    def __init__(
        self,
        graph_store: DiskGraphStore,
        ppv_store: DiskPPVStore,
        delta: float = DEFAULT_DELTA,
        fault_budget: int | None = None,
    ) -> None:
        if graph_store.num_nodes != ppv_store.num_nodes:
            raise ValueError("graph store and PPV store disagree on node count")
        self.graph_store = graph_store
        self.ppv_store = ppv_store
        self.delta = delta
        self.fault_budget = (
            fault_budget if fault_budget is not None else graph_store.num_clusters
        )

    # ------------------------------------------------------------------ #

    def _prime_push_on_disk(
        self, source: int
    ) -> tuple[np.ndarray, dict[int, float], bool]:
        """Cluster-draining prime push through the cluster store.

        Push is order-independent (any schedule that expands every
        super-threshold residual converges to the same vector), so instead
        of the in-memory engine's level-synchronous order we *drain one
        cluster at a time*: all resident residual is propagated to
        exhaustion — intra-cluster mass bounces without I/O — and only the
        mass exported to other clusters is deferred.  This mirrors the
        paper's DFS-within-cluster search and keeps faults near the number
        of distinct clusters the prime subgraph overlaps.

        Returns ``(dense scores, border arrival masses, truncated)`` where
        ``truncated`` reports whether the fault budget cut the search.
        """
        alpha = self.ppv_store.alpha
        epsilon = self.ppv_store.epsilon
        hub_mask = self.ppv_store.hub_mask
        n = self.graph_store.num_nodes
        scores = np.zeros(n)
        border: dict[int, float] = {}
        # Pending *expansion* mass per cluster.  Scoring and border
        # bookkeeping happen at insertion time and need no I/O — only the
        # expansion of a node requires its cluster's adjacency, so pools
        # whose every node sits below epsilon are dropped fault-free.
        pools: dict[int, dict[int, float]] = {}

        def deposit(node: int, mass: float) -> None:
            scores[node] += alpha * mass
            if hub_mask[node]:
                border[node] = border.get(node, 0.0) + mass
                return
            cluster = self.graph_store.cluster_of(node)
            pool = pools.setdefault(cluster, {})
            pool[node] = pool.get(node, 0.0) + mass

        # The initial unit at the source always expands (a tour's start
        # never counts towards hub length), even when the source is a hub.
        scores[source] += alpha
        source_cluster = self.graph_store.cluster_of(source)
        pools[source_cluster] = {source: 1.0}

        start_faults = self.graph_store.faults
        truncated = False
        while pools:
            # Prefer the resident cluster; otherwise drain the heaviest
            # pool (its export pattern settles fastest).
            resident = self.graph_store._resident_cluster_hint()
            if resident in pools and any(
                m >= epsilon for m in pools[resident].values()
            ):
                cluster = resident
            else:
                cluster = max(pools, key=lambda c: sum(pools[c].values()))
            pending = pools.pop(cluster)
            local = {
                node: mass for node, mass in pending.items() if mass >= epsilon
            }
            if not local:
                continue  # everything sub-threshold: already scored, no I/O
            if self.graph_store.faults - start_faults >= self.fault_budget:
                truncated = True
                break
            # FIFO order lets arriving shares aggregate before their node
            # is expanded (LIFO would expand each share almost alone,
            # multiplying the work by the cycle count).
            queue = deque(local)
            while queue:
                node = queue.popleft()
                mass = local.pop(node, 0.0)
                if mass < epsilon:
                    continue  # sub-threshold remainder: already scored
                neighbors, probabilities = self.graph_store.out_edges(node)
                for target, probability in zip(neighbors, probabilities):
                    target = int(target)
                    share = (1.0 - alpha) * mass * probability
                    if (
                        not hub_mask[target]
                        and self.graph_store.cluster_of(target) == cluster
                    ):
                        # Keep intra-cluster mass local: score it now,
                        # aggregate the pending expansion.
                        scores[target] += alpha * share
                        if target in local:
                            local[target] += share
                        else:
                            local[target] = share
                            queue.append(target)
                    else:
                        deposit(target, share)
        return scores, border, truncated

    def query(
        self,
        query: int,
        stop: StoppingCondition | None = None,
    ) -> DiskQueryResult:
        """Estimate the PPV of ``query`` from disk-resident data."""
        if not 0 <= query < self.graph_store.num_nodes:
            raise ValueError(f"query node {query} out of range")
        if stop is None:
            stop = StopAfterIterations(2)
        alpha = self.ppv_store.alpha
        started = time.perf_counter()
        faults_before = self.graph_store.faults
        reads_before = self.ppv_store.reads

        truncated = False
        if query in self.ppv_store:
            entry = self.ppv_store.get(query)
            estimate = entry.to_dense(self.graph_store.num_nodes)
            frontier = dict(
                zip(entry.border_hubs.tolist(), entry.border_masses.tolist())
            )
        else:
            estimate, frontier, truncated = self._prime_push_on_disk(query)

        error_history = [1.0 - float(estimate.sum())]
        hubs_expanded = 0
        iteration = 0
        while frontier and iteration < 64:
            state_error = error_history[-1]
            state = QueryState(
                iteration=iteration,
                l1_error=state_error,
                elapsed_seconds=time.perf_counter() - started,
                frontier_size=len(frontier),
            )
            if stop.should_stop(state):
                break
            iteration += 1
            next_frontier: dict[int, float] = {}
            for hub, mass in frontier.items():
                if alpha * mass <= self.delta:
                    continue
                entry = self.ppv_store.get(hub)
                estimate[entry.nodes] += mass * entry.scores
                estimate[hub] -= alpha * mass  # trivial-tour correction
                hubs_expanded += 1
                for border, border_mass in zip(
                    entry.border_hubs.tolist(), entry.border_masses.tolist()
                ):
                    next_frontier[border] = (
                        next_frontier.get(border, 0.0) + mass * border_mass
                    )
            frontier = next_frontier
            error_history.append(1.0 - float(estimate.sum()))

        result = QueryResult(
            query=query,
            scores=estimate,
            iterations=iteration,
            error_history=error_history,
            hubs_expanded=hubs_expanded,
            seconds=time.perf_counter() - started,
        )
        return DiskQueryResult(
            result=result,
            cluster_faults=self.graph_store.faults - faults_before,
            hub_reads=self.ppv_store.reads - reads_before,
            truncated=truncated,
        )
