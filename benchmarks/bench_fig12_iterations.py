"""Fig. 12: incremental online processing — the eta sweep."""

import pytest

from benchmarks.common import BENCH_QUERIES, BENCH_SCALE, emit
from repro import FastPPV, StopAfterIterations, build_index, select_hubs
from repro.experiments import dblp_graph, livejournal_graph, make_workload
from repro.experiments.fig12_iterations import fig12_table, run_iteration_sweep


@pytest.fixture(scope="module")
def sweeps():
    runs = {}
    for name, graph, num_hubs in (
        ("DBLP", dblp_graph(scale=BENCH_SCALE).graph, max(20, int(150 * BENCH_SCALE))),
        (
            "LiveJournal",
            livejournal_graph(scale=BENCH_SCALE),
            max(40, int(300 * BENCH_SCALE)),
        ),
    ):
        workload = make_workload(graph, num_queries=BENCH_QUERIES, seed=0)
        hubs = select_hubs(graph, num_hubs)
        index = build_index(graph, hubs)
        points = run_iteration_sweep(graph, workload, index, etas=(0, 1, 2, 3))
        runs[name] = (graph, index, points)
    return runs


def test_fig12_iterations(benchmark, sweeps):
    tables = []
    for name, (_, _, points) in sweeps.items():
        tables.append(fig12_table(points, name))
        # Shape assertions: accuracy improves monotonically with eta, and
        # the biggest L1 gain comes from the earliest iteration.
        sims = [p.outcome.accuracy.l1_similarity for p in points]
        assert all(b >= a - 0.01 for a, b in zip(sims, sims[1:]))
        gains = [b - a for a, b in zip(sims, sims[1:])]
        if len(gains) >= 2 and gains[1] > 1e-3:
            assert gains[0] >= gains[-1] - 0.01
    emit("fig12_iterations", *tables)

    # Timing record: one eta=2 query on LiveJournal.
    graph, index, _ = sweeps["LiveJournal"]
    engine = FastPPV(graph, index, online_epsilon=1e-6)
    stop = StopAfterIterations(2)
    benchmark(lambda: engine.query(13, stop=stop))
