"""Unit tests for the HubRankP baseline."""

import numpy as np
import pytest

from repro.baselines import HubRankP
from repro.core.exact import exact_ppv
from repro.metrics import precision_at_k
from tests.conftest import ALPHA


@pytest.fixture(scope="module")
def engine(small_social):
    return HubRankP(small_social, num_hubs=30, push_threshold=1e-4)


class TestOffline:
    def test_hub_count(self, engine):
        assert engine.hubs.size == 30
        assert engine.offline_stats.num_hubs == 30

    def test_stats_accounting(self, engine):
        assert engine.offline_stats.build_seconds > 0.0
        assert engine.offline_stats.stored_bytes > 0
        assert engine.offline_stats.stored_entries > 0

    def test_hubs_have_high_benefit(self, engine, small_social):
        from repro.graph import global_pagerank

        pagerank = global_pagerank(small_social, alpha=ALPHA)
        benefit = pagerank * np.log2(2.0 + small_social.out_degrees)
        hub_benefit = benefit[engine.hubs].min()
        non_hub = np.setdiff1d(np.arange(small_social.num_nodes), engine.hubs)
        assert hub_benefit >= benefit[non_hub].max() - 1e-12

    def test_invalid_threshold(self, small_social):
        with pytest.raises(ValueError):
            HubRankP(small_social, num_hubs=5, push_threshold=0.0)


class TestOnline:
    def test_reasonable_accuracy(self, engine, small_social):
        exact = exact_ppv(small_social, 17, alpha=ALPHA)
        result = engine.query(17)
        assert precision_at_k(exact, result.scores, k=10) >= 0.7

    def test_result_fields(self, engine):
        result = engine.query(4)
        assert result.query == 4
        assert result.seconds > 0.0
        assert result.scores.shape == (engine.graph.num_nodes,)

    def test_top_k_sorted(self, engine):
        result = engine.query(4)
        top = result.top_k(5)
        values = result.scores[top]
        assert np.all(np.diff(values) <= 1e-15)

    def test_query_at_hub(self, engine, small_social):
        hub = int(engine.hubs[0])
        exact = exact_ppv(small_social, hub, alpha=ALPHA)
        result = engine.query(hub)
        assert precision_at_k(exact, result.scores, k=10) >= 0.6

    def test_finer_threshold_more_mass(self, small_social):
        coarse = HubRankP(small_social, num_hubs=10, push_threshold=1e-2)
        fine = HubRankP(small_social, num_hubs=10, push_threshold=1e-5)
        q = 23
        assert fine.query(q).scores.sum() >= coarse.query(q).scores.sum() - 1e-9

    def test_estimates_bounded_by_one(self, engine):
        result = engine.query(9)
        # Clipped hub vectors can only lose mass; the total stays <= 1.
        assert result.scores.sum() <= 1.0 + 1e-6
