"""The process-wide metrics registry behind ``repro.obs``.

Three metric kinds — :class:`Counter`, :class:`Gauge`,
:class:`Histogram` — each optionally labelled, collected in a
:class:`MetricsRegistry` whose :meth:`~MetricsRegistry.snapshot` is one
JSON-ready dict the ``stats`` verb ships unchanged and
:meth:`~MetricsRegistry.merge` folds across pool workers and shards.
:func:`render_prometheus` turns any snapshot into Prometheus text
exposition for scraping (``repro stats --prometheus``).

Two registration styles, chosen by cost profile:

* **Push metrics** (:meth:`~MetricsRegistry.counter` /
  :meth:`~MetricsRegistry.gauge` / :meth:`~MetricsRegistry.histogram`)
  are updated by the hot path.  Counter/gauge increments are lock-free
  — a single attribute ``+=`` that the GIL keeps coherent (metric
  counts tolerate the theoretical torn update under free-threading);
  histograms take one short lock per observation, exactly like the
  ``LatencyHistogram`` they grew out of.
* **Function-backed metrics** (:meth:`~MetricsRegistry.counter_func` /
  :meth:`~MetricsRegistry.gauge_func` /
  :meth:`~MetricsRegistry.histogram_func`) read an existing counter
  *at snapshot time* — the serving stack already counts cache hits,
  store reads, cluster faults and shard fetches, so exposing them
  costs the hot path nothing at all.

Metric creation is idempotent: re-registering a name returns the
existing metric (mismatched kinds raise ``ValueError``), so components
constructed twice against one registry share their series instead of
colliding.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Mapping, Sequence

DEFAULT_LATENCY_BOUNDS = (
    0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0,
)
"""Upper edges (seconds) of the default latency buckets; one overflow
bucket catches everything beyond the last edge."""


def _label_key(labelnames: tuple, values: tuple) -> tuple:
    if len(values) != len(labelnames):
        raise ValueError(
            f"expected {len(labelnames)} label value(s) "
            f"{list(labelnames)}, got {len(values)}"
        )
    return tuple(str(value) for value in values)


class Counter:
    """A monotonically increasing count (optionally labelled)."""

    kind = "counter"

    def __init__(
        self, name: str = "", help: str = "", labelnames: Sequence[str] = ()
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._value: float = 0
        self._children: dict[tuple, Counter] = {}
        self._child_lock = threading.Lock()

    def labels(self, *values) -> "Counter":
        """The child series for one label-value combination."""
        key = _label_key(self.labelnames, values)
        child = self._children.get(key)
        if child is None:
            with self._child_lock:
                child = self._children.setdefault(
                    key, type(self)(self.name, self.help)
                )
        return child

    def inc(self, amount: float = 1) -> None:
        """Count ``amount`` (lock-free; see module docstring)."""
        if self.labelnames:
            raise ValueError("labelled metric: select a series via labels()")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def samples(self) -> list[dict]:
        if self.labelnames:
            return [
                {"labels": list(key), "value": child._value}
                for key, child in sorted(self._children.items())
            ]
        return [{"labels": [], "value": self._value}]


class Gauge(Counter):
    """A value that can go up and down (optionally labelled)."""

    kind = "gauge"

    def set(self, value: float) -> None:
        if self.labelnames:
            raise ValueError("labelled metric: select a series via labels()")
        self._value = value

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)


class Histogram:
    """Thread-safe log-bucketed observation counts (JSON-friendly).

    Each :meth:`record` lands the observation in the first bucket whose
    upper edge is >= the value; :meth:`snapshot` returns a plain dict
    (``bounds``/``counts``/``count``/``total_seconds``) that serialises
    over the stats verb unchanged.  ``total_seconds`` is the running sum
    of observations in the metric's own unit (the name predates
    non-latency histograms and is kept for wire compatibility).

    This is the class previously known as
    ``repro.serving.service.LatencyHistogram``; that name remains a
    back-compat alias.
    """

    kind = "histogram"

    def __init__(
        self,
        bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS,
        *,
        name: str = "",
        help: str = "",
        labelnames: Sequence[str] = (),
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.bounds = tuple(bounds)
        self._counts = [0] * (len(self.bounds) + 1)
        self._total_seconds = 0.0
        self._count = 0
        self._lock = threading.Lock()
        self._children: dict[tuple, Histogram] = {}

    def labels(self, *values) -> "Histogram":
        """The child series for one label-value combination."""
        key = _label_key(self.labelnames, values)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(
                    key, Histogram(self.bounds, name=self.name, help=self.help)
                )
        return child

    def record(self, seconds: float) -> None:
        """Count one observation of ``seconds``."""
        if self.labelnames:
            raise ValueError("labelled metric: select a series via labels()")
        index = bisect_left(self.bounds, seconds)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._total_seconds += seconds

    observe = record

    def snapshot(self) -> dict:
        """Bucket counts plus totals, as one JSON-ready dict."""
        with self._lock:
            return {
                "bounds": list(self.bounds),
                "counts": list(self._counts),
                "count": self._count,
                "total_seconds": self._total_seconds,
            }

    def samples(self) -> list[dict]:
        if self.labelnames:
            with self._lock:
                children = sorted(self._children.items())
            return [
                {"labels": list(key), "histogram": child.snapshot()}
                for key, child in children
            ]
        return [{"labels": [], "histogram": self.snapshot()}]

    @classmethod
    def merge(cls, snapshots: "Sequence[dict]") -> dict:
        """Fold several :meth:`snapshot` dicts into one.

        The shard router aggregates per-shard latency this way: bucket
        counts and totals are additive as long as every snapshot used
        the same bucket edges.  An empty sequence merges to an empty
        default-bounds snapshot.

        Raises
        ------
        ValueError
            When the snapshots disagree on bucket bounds.
        """
        merged = cls().snapshot()
        if not snapshots:
            return merged
        merged["bounds"] = list(snapshots[0].get("bounds", merged["bounds"]))
        merged["counts"] = [0] * (len(merged["bounds"]) + 1)
        for snapshot in snapshots:
            if list(snapshot["bounds"]) != merged["bounds"]:
                raise ValueError(
                    "cannot merge latency histograms with different "
                    f"bounds: {snapshot['bounds']} vs {merged['bounds']}"
                )
            for index, count in enumerate(snapshot["counts"]):
                merged["counts"][index] += int(count)
            merged["count"] += int(snapshot["count"])
            merged["total_seconds"] += float(snapshot["total_seconds"])
        return merged


class _FuncMetric:
    """A metric whose value is read from a callable at snapshot time.

    Unlabelled: ``fn()`` returns one number (or one histogram snapshot
    dict).  Labelled: ``fn()`` returns ``{label_values_tuple: value}``.
    """

    def __init__(
        self,
        kind: str,
        name: str,
        help: str,
        fn: Callable,
        labelnames: Sequence[str] = (),
    ) -> None:
        self.kind = kind
        self.name = name
        self.help = help
        self.fn = fn
        self.labelnames = tuple(labelnames)

    def _sample(self, labels: list, value) -> dict:
        if self.kind == "histogram":
            return {"labels": labels, "histogram": dict(value)}
        return {"labels": labels, "value": value}

    def samples(self) -> list[dict]:
        value = self.fn()
        if not self.labelnames:
            return [self._sample([], value)]
        out = []
        for key in sorted(value):
            key_tuple = key if isinstance(key, tuple) else (key,)
            out.append(
                self._sample([str(part) for part in key_tuple], value[key])
            )
        return out


class MetricsRegistry:
    """A named collection of metrics with one mergeable snapshot."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, object] = {}

    def _register(self, kind: str, name: str, factory):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise ValueError(
                        f"metric {name!r} is already registered as a "
                        f"{existing.kind}, not a {kind}"
                    )
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    # -------------------------------------------------------------- #
    # Push metrics (updated by the instrumented hot path)

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._register(
            "counter", name, lambda: Counter(name, help, labelnames)
        )

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._register(
            "gauge", name, lambda: Gauge(name, help, labelnames)
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS,
        labelnames: Sequence[str] = (),
    ) -> Histogram:
        return self._register(
            "histogram",
            name,
            lambda: Histogram(
                bounds, name=name, help=help, labelnames=labelnames
            ),
        )

    # -------------------------------------------------------------- #
    # Function-backed metrics (read at snapshot time; zero hot-path cost)

    def counter_func(
        self,
        name: str,
        help: str,
        fn: Callable,
        labelnames: Sequence[str] = (),
    ) -> _FuncMetric:
        return self._register(
            "counter",
            name,
            lambda: _FuncMetric("counter", name, help, fn, labelnames),
        )

    def gauge_func(
        self,
        name: str,
        help: str,
        fn: Callable,
        labelnames: Sequence[str] = (),
    ) -> _FuncMetric:
        return self._register(
            "gauge",
            name,
            lambda: _FuncMetric("gauge", name, help, fn, labelnames),
        )

    def histogram_func(
        self,
        name: str,
        help: str,
        fn: Callable,
        labelnames: Sequence[str] = (),
    ) -> _FuncMetric:
        return self._register(
            "histogram",
            name,
            lambda: _FuncMetric("histogram", name, help, fn, labelnames),
        )

    # -------------------------------------------------------------- #

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._metrics))

    def get(self, name: str):
        """The registered metric called ``name``, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def snapshot(self) -> dict:
        """Every metric's current samples, as one JSON-ready dict."""
        with self._lock:
            metrics = list(self._metrics.items())
        out = {}
        for name, metric in metrics:
            out[name] = {
                "type": metric.kind,
                "help": metric.help,
                "labelnames": list(metric.labelnames),
                "samples": metric.samples(),
            }
        return out

    @staticmethod
    def merge(snapshots: "Sequence[Mapping]") -> dict:
        """Fold several :meth:`snapshot` dicts into one.

        Counters and gauges are summed per (name, label values) —
        fleet-wide totals, which is also the meaningful aggregation for
        the gauges this stack exposes (queue depths, open connections,
        cache entries).  Histograms merge via :meth:`Histogram.merge`
        (``ValueError`` on mismatched bucket bounds, same contract as
        the latency histograms); mismatched metric *types* under one
        name raise ``ValueError`` too.
        """
        merged: dict = {}
        accumulated: dict[str, dict] = {}
        for snapshot in snapshots:
            for name, metric in snapshot.items():
                slot = merged.get(name)
                if slot is None:
                    slot = merged[name] = {
                        "type": metric["type"],
                        "help": metric.get("help", ""),
                        "labelnames": list(metric.get("labelnames", [])),
                        "samples": [],
                    }
                    accumulated[name] = {}
                elif metric["type"] != slot["type"]:
                    raise ValueError(
                        f"cannot merge metric {name!r}: "
                        f"{metric['type']} vs {slot['type']}"
                    )
                buckets = accumulated[name]
                for sample in metric.get("samples", []):
                    key = tuple(sample.get("labels", []))
                    if slot["type"] == "histogram":
                        buckets.setdefault(key, []).append(
                            sample["histogram"]
                        )
                    else:
                        buckets[key] = buckets.get(key, 0) + sample["value"]
        for name, slot in merged.items():
            for key in sorted(accumulated[name]):
                value = accumulated[name][key]
                if slot["type"] == "histogram":
                    slot["samples"].append(
                        {
                            "labels": list(key),
                            "histogram": Histogram.merge(value),
                        }
                    )
                else:
                    slot["samples"].append(
                        {"labels": list(key), "value": value}
                    )
        return merged


_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide shared registry (components that are not owned
    by a service can register here)."""
    return _DEFAULT_REGISTRY


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_labels(labelnames: Sequence[str], values: Sequence[str]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(labelnames, values)
    )
    return "{" + pairs + "}"


def _merge_labels(base: str, extra: str) -> str:
    if not base:
        return "{" + extra + "}"
    return base[:-1] + "," + extra + "}"


def render_prometheus(snapshot: Mapping) -> str:
    """A :meth:`MetricsRegistry.snapshot` as Prometheus text exposition.

    Histograms render the conventional cumulative ``_bucket`` series
    (with ``le`` labels and a ``+Inf`` overflow) plus ``_sum`` and
    ``_count``.
    """
    lines: list[str] = []
    for name in sorted(snapshot):
        metric = snapshot[name]
        kind = metric.get("type", "gauge")
        help_text = metric.get("help", "")
        labelnames = metric.get("labelnames", [])
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in metric.get("samples", []):
            labels = _format_labels(labelnames, sample.get("labels", []))
            if kind != "histogram":
                lines.append(f"{name}{labels} {sample['value']}")
                continue
            hist = sample["histogram"]
            cumulative = 0
            for bound, count in zip(hist["bounds"], hist["counts"]):
                cumulative += int(count)
                bucket = _merge_labels(labels, f'le="{bound}"')
                lines.append(f"{name}_bucket{bucket} {cumulative}")
            bucket = _merge_labels(labels, 'le="+Inf"')
            lines.append(f"{name}_bucket{bucket} {hist['count']}")
            lines.append(f"{name}_sum{labels} {hist['total_seconds']}")
            lines.append(f"{name}_count{labels} {hist['count']}")
    return "\n".join(lines) + "\n"
