"""Disk-based online query processing (Sect. 5.3, Fig. 16).

Simulates the paper's reduced-memory deployment: the graph is segmented
into PPR clusters, each persisted as its own file, and **at most one
cluster's adjacency lives in memory at a time**.  Walking the prime
subgraph of a query touches neighbouring clusters; every swap is a
*cluster fault*.  Faults are counted, and the prime-subgraph search is
prematurely terminated once a fault budget (default: the number of
clusters, "generally robust" per the paper) is exhausted — trading a
little accuracy for much less I/O.

Hub prime PPVs are fetched lazily from the on-disk
:class:`~repro.storage.ppv_store.DiskPPVStore`, one random access each.

Batched serving
---------------
:class:`BatchDiskFastPPV` serves a whole batch against the same stores
while amortising the I/O that dominates scalar disk queries:

* The prime-subgraph walks of all non-hub queries run as interleaved
  :class:`_PrimePushRun` steps grouped **by cluster**: each scheduling
  wave picks the cluster most queries need next and drains every such
  query's pending mass while that one cluster is resident, so a cluster
  is faulted in once per wave instead of once per query.  A run's
  per-query schedule (heaviest pool first, FIFO within a cluster) is
  fixed and residency-independent, so per-query scores are bitwise
  identical to a solo :class:`DiskFastPPV` run.
* Hub prime PPVs are fetched through a per-batch cache seeded by
  :meth:`~repro.storage.ppv_store.DiskPPVStore.get_many` (offset-ordered
  reads): each hub payload is read from disk once per batch, not once
  per query that splices it.
* The incremental splice rounds of the whole batch run in lock-step
  through the order-preserving vectorised kernel of
  :func:`repro.core.splice.splice_rounds_exact` — fetched payloads are
  assembled into a shared :class:`~repro.core.splice.SpliceBlock` (the
  same two-matrix lowering the in-memory batch engine builds offline)
  and each round is two sparse gather-multiply-scatter products over
  the stacked, delta-gated frontiers.  Unlike the in-memory matmul
  form, the products accumulate in the scalar loop's exact operation
  order, so scores stay **bitwise equal** to scalar serving; the
  historical per-hub dict loop survives as ``kernel="reference"`` (the
  executable specification, pinned in ``tests/test_disk_batch.py`` and
  the baseline of ``benchmarks/bench_disk_batch.py``).  The scalar
  engine runs the same kernel as a batch of one, which also means a
  hub re-gated in a later round is now served from the query's resident
  block instead of a repeated physical read (``hub_reads`` still
  reports the scalar-equivalent fetch count).

Per-query :class:`DiskQueryResult` accounting under batching is
*deterministic scalar-equivalent* I/O: ``cluster_faults`` counts the
query's drain steps — the faults a dedicated **one-cluster-budget**
store would incur (the paper's Fig. 16 setting, and the currency the
fault budget is charged in) — and ``hub_reads`` counts the hub fetches
the query requested.  A scalar engine over a store with
``memory_budget > 1`` can report fewer physical faults for the same
query (LRU hits are free there); the batch numbers are intentionally
budget-independent so experiments stay comparable.  The physical,
amortised batch I/O is the delta of the stores' ``faults`` / ``reads``
counters around the call.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.core.prime import PrimePPV
from repro.core.query import (
    DEFAULT_DELTA,
    QueryResult,
    QueryState,
    StopAfterIterations,
    StoppingCondition,
)
from repro.core.splice import SpliceBlock, splice_rounds_exact
from repro.core.topk import StopWhenCertified, TopKResult, top_k_result
from repro.graph.digraph import DiGraph
from repro.storage.clustering import ClusterAssignment, cluster_graph
from repro.storage.ppv_store import DiskPPVStore


class DiskGraphStore:
    """A graph segmented into per-cluster files with a bounded cache.

    Parameters
    ----------
    graph:
        The graph to segment (used only at build time).
    assignment:
        Cluster assignment from :func:`repro.storage.clustering.cluster_graph`.
    directory:
        Where cluster files are written.
    memory_budget:
        How many clusters may be memory-resident at once.  The paper's
        deployment keeps exactly one (the Fig. 16 setting, the default);
        larger budgets trade memory for fewer faults via LRU eviction —
        the ablation of ``benchmarks/bench_fig16_disk.py``.
    fault_plan:
        Tests only: a :class:`repro.faults.FaultPlan` whose
        ``graph_store.load`` site fires per cluster segment actually
        loaded from disk.  ``None`` (the default) keeps the hot path
        hook-free.
    clusters:
        Build only the named clusters — a **partial** store, the unit
        :mod:`repro.sharding` partitions a graph into.  Labels and
        ``num_clusters`` stay global (``cluster_of`` answers for every
        node), but only the owned clusters' segments exist on disk; the
        manifest records the subset and :meth:`open` honours it.
        ``None`` (the default) stores every cluster.

    Notes
    -----
    Each cluster file holds the out-adjacency of its member nodes
    (``nodes``, ``offsets``, ``targets`` and per-edge step probabilities
    in the *global* id space) as an ``.npz``.  :meth:`out_edges`
    transparently swaps the owning cluster in, bumping :attr:`faults`
    when the needed cluster is not resident.
    """

    def __init__(
        self,
        graph: DiGraph,
        assignment: ClusterAssignment,
        directory: str | os.PathLike[str],
        memory_budget: int = 1,
        *,
        fault_plan=None,
        clusters: Sequence[int] | None = None,
    ) -> None:
        if memory_budget < 1:
            raise ValueError("memory_budget must be at least one cluster")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.num_nodes = graph.num_nodes
        self.labels = assignment.labels.copy()
        self._labels_list: list[int] | None = None
        self.num_clusters = assignment.num_clusters
        if clusters is None:
            self.clusters = list(range(assignment.num_clusters))
        else:
            self.clusters = sorted(int(cluster) for cluster in clusters)
            if self.clusters and not (
                0 <= self.clusters[0] and self.clusters[-1] < self.num_clusters
            ):
                raise ValueError("clusters out of range")
        self.memory_budget = memory_budget
        self.fault_plan = fault_plan
        self.faults = 0
        self.bytes_read = 0
        # LRU cache: cluster id -> (adjacency dict, per-node list cache),
        # most recent last.  The list cache holds plain-Python spellings
        # of adjacency rows for the push's per-edge hot loop; it lives
        # and dies with its cluster's residency.
        self._cache: "dict[int, tuple[dict, dict]]" = {}
        self._bytes_per_cluster: dict[int, int] = {}
        edge_probabilities = graph.edge_probabilities
        for cluster in self.clusters:
            nodes = assignment.members(cluster)
            probs = [
                edge_probabilities[graph.indptr[int(u)] : graph.indptr[int(u) + 1]]
                for u in nodes
            ]
            adjacency = {
                "nodes": nodes,
                "offsets": np.concatenate(
                    ([0], np.cumsum(graph.out_degrees[nodes]))
                ),
                "targets": np.concatenate(
                    [graph.out_neighbors(int(u)) for u in nodes]
                    or [np.empty(0, dtype=np.int32)]
                ),
                "probs": np.concatenate(probs or [np.empty(0)]),
            }
            path = self._cluster_path(cluster)
            np.savez(path, **adjacency)
            self._bytes_per_cluster[cluster] = path.stat().st_size
        np.save(self.directory / "labels.npy", self.labels)
        manifest = {
            "num_nodes": self.num_nodes,
            "num_clusters": self.num_clusters,
            "clusters": self.clusters,
        }
        (self.directory / "manifest.json").write_text(json.dumps(manifest))

    @classmethod
    def open(
        cls,
        directory: str | os.PathLike[str],
        memory_budget: int = 1,
        *,
        fault_plan=None,
    ) -> "DiskGraphStore":
        """Reopen a previously built store without the source graph.

        The build persists everything :meth:`out_edges` needs (cluster
        segments, labels, manifest), so a fresh reader over the same
        directory — another process, or one store per test example — is
        just metadata loads, no re-segmentation.
        """
        if memory_budget < 1:
            raise ValueError("memory_budget must be at least one cluster")
        self = cls.__new__(cls)
        self.directory = Path(directory)
        manifest = json.loads((self.directory / "manifest.json").read_text())
        self.num_nodes = int(manifest["num_nodes"])
        self.num_clusters = int(manifest["num_clusters"])
        labels_path = self.directory / "labels.npy"
        if not labels_path.exists():
            raise FileNotFoundError(
                f"{labels_path} missing: this store predates reopenable "
                "builds; rebuild it from the source graph"
            )
        self.labels = np.load(labels_path)
        self._labels_list = None
        self.memory_budget = memory_budget
        self.fault_plan = fault_plan
        self.faults = 0
        self.bytes_read = 0
        self._cache = {}
        # Manifests predating partial stores have no "clusters" entry:
        # they stored every cluster.
        self.clusters = [
            int(cluster)
            for cluster in manifest.get("clusters", range(self.num_clusters))
        ]
        self._bytes_per_cluster = {
            cluster: self._cluster_path(cluster).stat().st_size
            for cluster in self.clusters
        }
        return self

    def _cluster_path(self, cluster: int) -> Path:
        return self.directory / f"cluster_{cluster:05d}.npz"

    @property
    def largest_cluster_bytes(self) -> int:
        """On-disk size of the biggest stored cluster — the minimum
        working set."""
        return max(self._bytes_per_cluster.values())

    @property
    def total_bytes(self) -> int:
        """Total on-disk size of all stored clusters."""
        return sum(self._bytes_per_cluster.values())

    def cluster_of(self, node: int) -> int:
        """Cluster id owning ``node``."""
        return int(self.labels[node])

    @property
    def labels_list(self) -> list[int]:
        """``labels`` as a plain list — O(1) lookups without numpy
        scalar overhead on the push's per-edge hot path."""
        if self._labels_list is None:
            self._labels_list = self.labels.tolist()
        return self._labels_list

    def cluster_arrays(self, cluster: int) -> dict:
        """One stored cluster's raw arrays (``nodes`` / ``offsets`` /
        ``targets`` / ``probs``), bypassing the residency cache.

        This is a read of the stored bytes, not a swap-in: no eviction
        and no :attr:`faults` charge (the ``graph_store.load`` fault
        site still fires — it counts disk loads, and this is one).  The
        shard fetch path of :mod:`repro.sharding` serves clusters to
        routers through this.
        """
        if cluster not in self._bytes_per_cluster:
            raise ValueError(
                f"cluster {cluster} is not stored here (partial store "
                f"holding {len(self._bytes_per_cluster)} of "
                f"{self.num_clusters} clusters)"
            )
        if self.fault_plan is not None:
            self.fault_plan.fire("graph_store.load", cluster=int(cluster))
        self.bytes_read += self._bytes_per_cluster[cluster]
        with np.load(self._cluster_path(cluster)) as data:
            return {key: data[key] for key in data.files}

    def _load_cluster(self, cluster: int) -> dict:
        data = self.cluster_arrays(cluster)
        nodes = data["nodes"]
        offsets = data["offsets"]
        targets = data["targets"]
        probs = data["probs"]
        adjacency = {}
        for position, node in enumerate(nodes):
            start, end = offsets[position], offsets[position + 1]
            adjacency[int(node)] = (targets[start:end], probs[start:end])
        return adjacency

    def resident_cluster(self, cluster: int) -> tuple[dict, dict]:
        """``(adjacency, list cache)`` of ``cluster``, swapping it in
        (with LRU eviction, bumping :attr:`faults`) if needed.

        The cluster-draining push resolves residency once per drain
        through this instead of once per expanded node — same fault
        count (a drain's cluster can only fault on first touch) and the
        same final LRU state (re-inserting the resident cluster per node
        was a no-op).
        """
        entry = self._cache.get(cluster)
        if entry is None:
            self.faults += 1
            entry = (self._load_cluster(cluster), {})
            while len(self._cache) >= self.memory_budget:
                oldest = next(iter(self._cache))
                del self._cache[oldest]
        else:
            del self._cache[cluster]  # re-insert as most recent
        self._cache[cluster] = entry
        return entry

    def out_edges(self, node: int) -> tuple[np.ndarray, np.ndarray]:
        """``(targets, step probabilities)`` of ``node``, swapping its
        cluster in (with LRU eviction) if needed."""
        return self.resident_cluster(self.cluster_of(node))[0][node]

    def out_neighbors(self, node: int) -> np.ndarray:
        """Out-neighbours of ``node``, swapping its cluster in if needed."""
        return self.out_edges(node)[0]


class _PrimePushRun:
    """One query's cluster-draining prime push, advanced drain by drain.

    The scalar engine's push, restructured so a scheduler can interleave
    many runs: :meth:`next_cluster` resolves which cluster the next drain
    step needs (I/O-free), :meth:`drain` performs that step through the
    graph store.  The per-query schedule — heaviest pool first, FIFO
    within a cluster — is fixed and independent of which cluster happens
    to be memory-resident, so interleaving runs to share residency never
    changes a query's mass flow: scores are bitwise identical to running
    the query alone.

    The fault budget is charged per *drain step* — exactly the faults a
    dedicated one-cluster-budget store would incur — so truncation is
    deterministic and identical between scalar and batched serving.
    """

    __slots__ = (
        "graph_store",
        "hub_mask",
        "alpha",
        "epsilon",
        "fault_budget",
        "reference",
        "hub_list",
        "scores",
        "border",
        "pools",
        "drains",
        "truncated",
        "_pending",
    )

    def __init__(
        self,
        graph_store: DiskGraphStore,
        source: int,
        hub_mask: np.ndarray,
        alpha: float,
        epsilon: float,
        fault_budget: int,
        reference: bool = False,
        hub_list: "list[bool] | None" = None,
    ) -> None:
        self.graph_store = graph_store
        self.hub_mask = hub_mask
        self.alpha = alpha
        self.epsilon = epsilon
        self.fault_budget = fault_budget
        self.reference = reference
        # List-backed hub lookup for the per-edge hot loop (see drain);
        # the engines pass one shared conversion for the whole batch.
        self.hub_list: list[bool] = (
            hub_list if hub_list is not None else hub_mask.tolist()
        )
        self.scores = np.zeros(graph_store.num_nodes)
        self.border: dict[int, float] = {}
        # Pending *expansion* mass per cluster.  Scoring and border
        # bookkeeping happen at insertion time and need no I/O — only the
        # expansion of a node requires its cluster's adjacency, so pools
        # whose every node sits below epsilon are dropped fault-free.
        self.pools: dict[int, dict[int, float]] = {}
        self.drains = 0
        self.truncated = False
        self._pending: tuple[int, dict[int, float]] | None = None
        # The initial unit at the source always expands (a tour's start
        # never counts towards hub length), even when the source is a hub.
        self.scores[source] += alpha
        self.pools[graph_store.cluster_of(source)] = {source: 1.0}

    def next_cluster(self) -> int | None:
        """Cluster the next drain step needs, or ``None`` when done.

        Resolving is idempotent and performs no I/O: sub-threshold pools
        are dropped (their mass is already scored), and the heaviest
        remaining pool is staged until :meth:`drain` consumes it.
        """
        if self._pending is not None:
            return self._pending[0]
        while self.pools:
            # Heaviest pool first: its export pattern settles fastest.
            # (A resident-cluster preference would be vacuous: the only
            # selection it could influence is the first, where the sole
            # pool is the source's cluster.)
            cluster = max(self.pools, key=lambda c: sum(self.pools[c].values()))
            pending = self.pools.pop(cluster)
            local = {
                node: mass
                for node, mass in pending.items()
                if mass >= self.epsilon
            }
            if not local:
                continue  # everything sub-threshold: already scored, no I/O
            if self.drains >= self.fault_budget:
                self.truncated = True
                self.pools.clear()
                return None
            self._pending = (cluster, local)
            return cluster
        return None

    def _deposit(self, node: int, mass: float) -> None:
        self.scores[node] += self.alpha * mass
        if self.hub_mask[node]:
            self.border[node] = self.border.get(node, 0.0) + mass
            return
        cluster = self.graph_store.cluster_of(node)
        pool = self.pools.setdefault(cluster, {})
        pool[node] = pool.get(node, 0.0) + mass

    def drain(self) -> None:
        """Drain the staged cluster: propagate its resident residual to
        exhaustion — intra-cluster mass bounces without I/O, exported
        mass is deferred to other pools.

        The hot loop runs on plain Python scalars (pre-listed adjacency,
        list-backed hub/label lookups) and defers every ``scores[t] +=``
        into one sequential :func:`numpy.add.at` per drain — ``scores``
        is never *read* during a drain, and ``np.add.at`` applies its
        updates in element order, so the deferred flush performs the
        exact same additions in the exact same order as the historical
        per-edge loop, which survives as ``reference=True`` (the pre-PR
        baseline timed by ``benchmarks/bench_disk_batch.py``).  Both
        variants produce bit-for-bit identical mass flow.
        """
        cluster, local = self._pending  # type: ignore[misc]
        self._pending = None
        self.drains += 1
        alpha, epsilon = self.alpha, self.epsilon
        hub_mask, graph_store = self.hub_mask, self.graph_store
        scores = self.scores
        # FIFO order lets arriving shares aggregate before their node is
        # expanded (LIFO would expand each share almost alone,
        # multiplying the work by the cycle count).
        queue = deque(local)
        if self.reference:
            while queue:
                node = queue.popleft()
                mass = local.pop(node, 0.0)
                if mass < epsilon:
                    continue  # sub-threshold remainder: already scored
                neighbors, probabilities = graph_store.out_edges(node)
                for target, probability in zip(neighbors, probabilities):
                    target = int(target)
                    share = (1.0 - alpha) * mass * probability
                    if (
                        not hub_mask[target]
                        and graph_store.cluster_of(target) == cluster
                    ):
                        # Keep intra-cluster mass local: score it now,
                        # aggregate the pending expansion.
                        scores[target] += alpha * share
                        if target in local:
                            local[target] += share
                        else:
                            local[target] = share
                            queue.append(target)
                    else:
                        self._deposit(target, share)
            return
        border, pools = self.border, self.pools
        hub_list = self.hub_list
        labels_list = graph_store.labels_list
        # One residency resolution per drain: every expanded node lives
        # in the staged cluster, which stays resident throughout.
        adjacency, adjacency_lists = graph_store.resident_cluster(cluster)
        score_nodes: list[int] = []
        score_values: list[float] = []
        while queue:
            node = queue.popleft()
            mass = local.pop(node, 0.0)
            if mass < epsilon:
                continue  # sub-threshold remainder: already scored
            row = adjacency_lists.get(node)
            if row is None:
                targets_array, probabilities_array = adjacency[node]
                row = (targets_array.tolist(), probabilities_array.tolist())
                adjacency_lists[node] = row
            targets, probabilities = row
            # ((1 - alpha) * mass) * p per edge: the historical loop's
            # left-associated product, bit-identical share by share.
            base = (1.0 - alpha) * mass
            for target, probability in zip(targets, probabilities):
                share = base * probability
                # Every target is scored alpha * share whichever way it
                # routes; the adds are flushed in this exact order below.
                score_nodes.append(target)
                score_values.append(alpha * share)
                if hub_list[target]:
                    border[target] = border.get(target, 0.0) + share
                elif labels_list[target] == cluster:
                    if target in local:
                        local[target] += share
                    else:
                        local[target] = share
                        queue.append(target)
                else:
                    pool = pools.setdefault(labels_list[target], {})
                    pool[target] = pool.get(target, 0.0) + share
        if score_nodes:
            np.add.at(scores, score_nodes, score_values)


def _splice_rounds_reference(
    estimate: np.ndarray,
    frontier: dict[int, float],
    stop: StoppingCondition,
    alpha: float,
    delta: float,
    max_iterations: int,
    fetch: Callable[[int], PrimePPV],
    started: float,
    on_iteration: Callable[[QueryState], None] | None = None,
) -> tuple[int, list[float], int, int]:
    """Algorithm 2's incremental rounds as the historical per-hub loop.

    This is the disk engines' original dict-based splice kernel, kept as
    the executable *specification* of the vectorised path: engines built
    with ``kernel="reference"`` run it, the equivalence suite pins the
    vectorised :func:`repro.core.splice.splice_rounds_exact` against it
    bit for bit, and ``benchmarks/bench_disk_batch.py`` times it as the
    speedup baseline.  ``fetch`` is either a direct
    :meth:`DiskPPVStore.get` (one physical read per call) or a per-batch
    cache over it.  ``on_iteration`` mirrors the in-memory engine's
    contract — invoked with the :class:`QueryState` once per executed
    iteration, iteration 0 included.  Returns ``(iterations,
    error_history, hubs_expanded, requested_reads)`` where
    ``requested_reads`` counts fetch calls — the scalar-equivalent read
    cost.
    """
    error_history = [1.0 - float(estimate.sum())]
    hubs_expanded = 0
    iteration = 0
    requested_reads = 0

    def current_state() -> QueryState:
        return QueryState(
            iteration=iteration,
            l1_error=error_history[-1],
            elapsed_seconds=time.perf_counter() - started,
            frontier_size=len(frontier),
            scores=estimate,
        )

    if on_iteration is not None:
        on_iteration(current_state())
    while frontier and iteration < max_iterations:
        if stop.should_stop(current_state()):
            break
        iteration += 1
        next_frontier: dict[int, float] = {}
        for hub, mass in frontier.items():
            if alpha * mass <= delta:
                continue
            entry = fetch(hub)
            requested_reads += 1
            estimate[entry.nodes] += mass * entry.scores
            estimate[hub] -= alpha * mass  # trivial-tour correction
            hubs_expanded += 1
            for border, border_mass in zip(
                entry.border_hubs.tolist(), entry.border_masses.tolist()
            ):
                next_frontier[border] = (
                    next_frontier.get(border, 0.0) + mass * border_mass
                )
        frontier = next_frontier
        error_history.append(1.0 - float(estimate.sum()))
        if on_iteration is not None:
            on_iteration(current_state())
    return iteration, error_history, hubs_expanded, requested_reads


_KERNELS = ("vectorised", "reference")


def _frontier_arrays(
    frontier: "dict[int, float] | tuple[np.ndarray, np.ndarray]",
) -> tuple[np.ndarray, np.ndarray]:
    """A frontier as ``(hub ids, masses)`` arrays in dict-iteration order."""
    if isinstance(frontier, tuple):
        return frontier
    return (
        np.fromiter(frontier.keys(), dtype=np.int64, count=len(frontier)),
        np.fromiter(frontier.values(), dtype=np.float64, count=len(frontier)),
    )


@dataclass
class DiskQueryResult:
    """A :class:`QueryResult` plus the I/O accounting of Fig. 16.

    Under :class:`BatchDiskFastPPV`, ``cluster_faults`` and ``hub_reads``
    report deterministic scalar-equivalent I/O: the faults a dedicated
    *one-cluster-budget* store would have paid (= the push's drain
    steps) and the hub fetches the query requested — independent of the
    batch store's ``memory_budget``.  The physical amortised batch I/O
    is the delta of the stores' counters around the batch call.
    """

    result: QueryResult
    cluster_faults: int
    hub_reads: int
    truncated: bool

    @property
    def scores(self) -> np.ndarray:
        """Estimated PPV (delegates to the inner result)."""
        return self.result.scores

    @property
    def seconds(self) -> float:
        """Wall-clock query time (delegates to the inner result)."""
        return self.result.seconds


class DiskFastPPV:
    """FastPPV online processing against disk-resident graph and index.

    Parameters
    ----------
    graph_store:
        Cluster-segmented graph (:class:`DiskGraphStore`).
    ppv_store:
        On-disk PPV index (:class:`DiskPPVStore`).
    delta:
        Border-hub expansion threshold (as in the in-memory engine).
    fault_budget:
        Prime-subgraph search stops expanding new nodes once this many
        cluster faults occurred within one query; defaults to the number
        of clusters (the paper's robust choice).
    max_iterations:
        Hard safety cap on incremental iterations regardless of the
        stopping condition, matching the in-memory engine's contract
        (:class:`~repro.core.query.FastPPV`, default 64).
    kernel:
        ``"vectorised"`` (default) runs the splice rounds through the
        order-preserving batch kernel of
        :func:`repro.core.splice.splice_rounds_exact`;
        ``"reference"`` runs the historical per-hub dict loop.  Both
        produce bitwise-identical results — the reference kernel exists
        as the executable specification and benchmark baseline.
    """

    def __init__(
        self,
        graph_store: DiskGraphStore,
        ppv_store: DiskPPVStore,
        delta: float = DEFAULT_DELTA,
        fault_budget: int | None = None,
        max_iterations: int = 64,
        kernel: str = "vectorised",
    ) -> None:
        if graph_store.num_nodes != ppv_store.num_nodes:
            raise ValueError("graph store and PPV store disagree on node count")
        if kernel not in _KERNELS:
            raise ValueError(f"kernel must be one of {_KERNELS}")
        self.graph_store = graph_store
        self.ppv_store = ppv_store
        self.delta = delta
        self.fault_budget = (
            fault_budget if fault_budget is not None else graph_store.num_clusters
        )
        self.max_iterations = max_iterations
        self.kernel = kernel
        self._batch_engine: "BatchDiskFastPPV | None" = None
    # ------------------------------------------------------------------ #

    def _prime_push_on_disk(
        self, source: int
    ) -> tuple[np.ndarray, dict[int, float], bool]:
        """Cluster-draining prime push through the cluster store.

        Push is order-independent (any schedule that expands every
        super-threshold residual converges to the same vector), so instead
        of the in-memory engine's level-synchronous order we *drain one
        cluster at a time*: all resident residual is propagated to
        exhaustion — intra-cluster mass bounces without I/O — and only the
        mass exported to other clusters is deferred.  This mirrors the
        paper's DFS-within-cluster search and keeps faults near the number
        of distinct clusters the prime subgraph overlaps.  The kernel
        lives in :class:`_PrimePushRun`, shared with the batched engine.

        Returns ``(dense scores, border arrival masses, truncated)`` where
        ``truncated`` reports whether the fault budget cut the search.
        """
        run = _PrimePushRun(
            self.graph_store,
            source,
            self.ppv_store.hub_mask,
            self.ppv_store.alpha,
            self.ppv_store.epsilon,
            self.fault_budget,
            reference=self.kernel == "reference",
            hub_list=self.ppv_store.hub_list,
        )
        while run.next_cluster() is not None:
            run.drain()
        return run.scores, run.border, run.truncated

    def query(
        self,
        query: int,
        stop: StoppingCondition | None = None,
        on_iteration: Callable[[QueryState], None] | None = None,
    ) -> DiskQueryResult:
        """Estimate the PPV of ``query`` from disk-resident data.

        ``on_iteration`` follows the in-memory engine's contract: invoked
        with the :class:`~repro.core.query.QueryState` after every
        executed splice iteration (iteration 0 included) — note the prime
        push that *builds* iteration 0 is not observable step by step.
        """
        if not 0 <= query < self.graph_store.num_nodes:
            raise ValueError(f"query node {query} out of range")
        if stop is None:
            stop = StopAfterIterations(2)
        started = time.perf_counter()
        faults_before = self.graph_store.faults

        truncated = False
        hub_reads = 0
        if query in self.ppv_store:
            entry = self.ppv_store.get(query)
            hub_reads += 1
            estimate = entry.to_dense(self.graph_store.num_nodes)
            frontier = dict(
                zip(entry.border_hubs.tolist(), entry.border_masses.tolist())
            )
        else:
            estimate, frontier, truncated = self._prime_push_on_disk(query)

        alpha = self.ppv_store.alpha
        if self.kernel == "reference":
            iteration, error_history, hubs_expanded, requested = (
                _splice_rounds_reference(
                    estimate,
                    frontier,
                    stop,
                    alpha,
                    self.delta,
                    self.max_iterations,
                    self.ppv_store.get,
                    started,
                    on_iteration=on_iteration,
                )
            )
        else:
            block = SpliceBlock(alpha, self.graph_store.num_nodes)

            def ensure(hubs: np.ndarray) -> None:
                # Offset-ordered sweep, one read per unique hub — the
                # same reads count as the historical per-hub fetches
                # (block row order never affects the output).
                for entry in self.ppv_store.get_many(hubs.tolist()).values():
                    block.add(entry)

            callback = None
            if on_iteration is not None:
                callback = lambda _position, state: on_iteration(state)
            [(iteration, error_history, hubs_expanded, requested, _)] = (
                splice_rounds_exact(
                    estimate.reshape(1, -1),
                    [_frontier_arrays(frontier)],
                    stop,
                    alpha,
                    self.delta,
                    self.max_iterations,
                    block,
                    ensure,
                    started,
                    on_iteration=callback,
                )
            )

        result = QueryResult(
            query=query,
            scores=estimate,
            iterations=iteration,
            error_history=error_history,
            hubs_expanded=hubs_expanded,
            seconds=time.perf_counter() - started,
        )
        return DiskQueryResult(
            result=result,
            cluster_faults=self.graph_store.faults - faults_before,
            hub_reads=hub_reads + requested,
            truncated=truncated,
        )

    @property
    def batch_engine(self) -> "BatchDiskFastPPV":
        """The :class:`BatchDiskFastPPV` twin of this engine (lazy)."""
        if self._batch_engine is None:
            self._batch_engine = BatchDiskFastPPV(
                self.graph_store,
                self.ppv_store,
                delta=self.delta,
                fault_budget=self.fault_budget,
                max_iterations=self.max_iterations,
                kernel=self.kernel,
            )
        return self._batch_engine


@dataclass
class DiskTopKResult:
    """A :class:`~repro.core.topk.TopKResult` plus disk I/O accounting."""

    topk: TopKResult
    cluster_faults: int
    hub_reads: int
    truncated: bool


class BatchDiskFastPPV:
    """Batched FastPPV serving against disk-resident graph and index.

    Amortises the two I/O costs of :class:`DiskFastPPV` across a batch
    (see the module docstring): cluster faults via cluster-grouped prime
    pushes, hub payload reads via a per-batch fetch cache.  The splice
    rounds of the whole batch run in lock-step through the vectorised
    exact kernel (:func:`repro.core.splice.splice_rounds_exact`): fetched
    prime PPVs are assembled into a shared
    :class:`~repro.core.splice.SpliceBlock` and each round becomes two
    order-preserving sparse products over the stacked, delta-gated
    frontiers.  Per-query results are bitwise identical to scalar
    :meth:`DiskFastPPV.query` calls with the same parameters.

    Parameters mirror :class:`DiskFastPPV`.
    """

    def __init__(
        self,
        graph_store: DiskGraphStore,
        ppv_store: DiskPPVStore,
        delta: float = DEFAULT_DELTA,
        fault_budget: int | None = None,
        max_iterations: int = 64,
        kernel: str = "vectorised",
    ) -> None:
        if graph_store.num_nodes != ppv_store.num_nodes:
            raise ValueError("graph store and PPV store disagree on node count")
        if kernel not in _KERNELS:
            raise ValueError(f"kernel must be one of {_KERNELS}")
        self.graph_store = graph_store
        self.ppv_store = ppv_store
        self.delta = delta
        self.fault_budget = (
            fault_budget if fault_budget is not None else graph_store.num_clusters
        )
        self.max_iterations = max_iterations
        self.kernel = kernel

    # ------------------------------------------------------------------ #

    def _grouped_pushes(self, ids: list[int]) -> dict[int, _PrimePushRun]:
        """Run the prime pushes of all unique non-hub queries, grouped by
        cluster: every scheduling wave picks the cluster most runs need
        next and drains all of them while it is resident, so the batch
        faults each cluster in once per wave instead of once per query."""
        runs: dict[int, _PrimePushRun] = {}
        hub_list = self.ppv_store.hub_list
        for q in ids:
            if q not in self.ppv_store and q not in runs:
                runs[q] = _PrimePushRun(
                    self.graph_store,
                    q,
                    self.ppv_store.hub_mask,
                    self.ppv_store.alpha,
                    self.ppv_store.epsilon,
                    self.fault_budget,
                    reference=self.kernel == "reference",
                    hub_list=hub_list,
                )
        active = dict(runs)
        while active:
            needs: dict[int, list[int]] = {}
            for q in list(active):
                cluster = active[q].next_cluster()
                if cluster is None:
                    del active[q]  # finished (or truncated by its budget)
                else:
                    needs.setdefault(cluster, []).append(q)
            if not needs:
                break
            # Most-demanded cluster first (ties: smallest cluster id).
            chosen = max(needs, key=lambda c: (len(needs[c]), -c))
            for q in needs[chosen]:
                active[q].drain()
        return runs

    def query_many(
        self,
        queries: Sequence[int],
        stop: StoppingCondition | None = None,
        on_iteration: "Callable[[int, QueryState], None] | None" = None,
    ) -> list[DiskQueryResult]:
        """Estimate the PPVs of ``queries`` from disk, preserving order.

        Scores, iteration counts and truncation flags are identical to
        calling :meth:`DiskFastPPV.query` per element; only the physical
        I/O schedule differs.  Per-query ``cluster_faults`` equals the
        scalar engine's over a ``memory_budget=1`` store (see the module
        docstring — a larger-budget scalar store can report fewer
        physical faults for the same work).  Duplicated query ids share
        one prime push.  ``stop`` is evaluated per query exactly as in
        the scalar engine (it sees per-query state, including
        ``scores``, so certificate conditions work here too).
        ``on_iteration`` mirrors the in-memory batch engine's
        :data:`~repro.core.batch.BatchCallback` contract: invoked as
        ``on_iteration(position, state)`` once per executed iteration
        per query, iteration 0 included.
        """
        ids = [int(q) for q in queries]
        for q in ids:
            if not 0 <= q < self.graph_store.num_nodes:
                raise ValueError(f"query node {q} out of range")
        if stop is None:
            stop = StopAfterIterations(2)
        started = time.perf_counter()
        alpha = self.ppv_store.alpha
        num_nodes = self.graph_store.num_nodes

        runs = self._grouped_pushes(ids)

        # Per-batch hub fetch cache: one physical (offset-ordered) read
        # per unique hub, however many queries splice it.
        fetched: dict[int, PrimePPV] = {}

        def fetch(hub: int) -> PrimePPV:
            entry = fetched.get(hub)
            if entry is None:
                entry = self.ppv_store.get(hub)
                fetched[hub] = entry
            return entry

        wanted: set[int] = set()
        for q in set(ids):
            if q in self.ppv_store:
                wanted.add(q)
        for run in runs.values():
            for hub, mass in run.border.items():
                if alpha * mass > self.delta:
                    wanted.add(hub)
        fetched.update(self.ppv_store.get_many(wanted))

        if self.kernel == "reference":
            return self._query_many_reference(
                ids, stop, started, alpha, runs, fetch, on_iteration
            )

        # ---- iteration 0: stack every query's estimate and frontier.
        batch = len(ids)
        estimates = np.zeros((batch, num_nodes))
        frontiers: list[tuple[np.ndarray, np.ndarray]] = []
        hub_reads = [0] * batch
        cluster_faults = [0] * batch
        truncated = [False] * batch
        for position, q in enumerate(ids):
            if q in self.ppv_store:
                entry = fetch(q)
                hub_reads[position] = 1
                estimates[position, entry.nodes] = entry.scores
                frontiers.append(
                    (
                        entry.border_hubs.astype(np.int64, copy=True),
                        entry.border_masses.astype(np.float64, copy=True),
                    )
                )
            else:
                run = runs[q]
                # Copy into the row: duplicates share the run, and the
                # splice rounds mutate the estimate in place.
                estimates[position] = run.scores
                frontiers.append(_frontier_arrays(run.border))
                cluster_faults[position] = run.drains
                truncated[position] = run.truncated

        # ---- incremental rounds: the shared exact kernel, with the
        # per-batch fetch cache feeding a shared SpliceBlock.
        block = SpliceBlock(alpha, num_nodes)

        def ensure(hubs: np.ndarray) -> None:
            absent = [
                int(hub) for hub in hubs.tolist() if hub not in fetched
            ]
            if absent:
                fetched.update(self.ppv_store.get_many(absent))
            for hub in hubs.tolist():
                block.add(fetched[hub])

        rounds = splice_rounds_exact(
            estimates,
            frontiers,
            stop,
            alpha,
            self.delta,
            self.max_iterations,
            block,
            ensure,
            started,
            on_iteration=on_iteration,
        )

        return [
            DiskQueryResult(
                result=QueryResult(
                    query=q,
                    # Copy out of the shared batch matrix so one retained
                    # result cannot pin the whole (batch, n) buffer.
                    scores=estimates[position].copy(),
                    iterations=iteration,
                    error_history=error_history,
                    hubs_expanded=hubs_expanded,
                    seconds=seconds,
                ),
                cluster_faults=cluster_faults[position],
                hub_reads=hub_reads[position] + requested,
                truncated=truncated[position],
            )
            for position, (
                q,
                (iteration, error_history, hubs_expanded, requested, seconds),
            ) in enumerate(zip(ids, rounds))
        ]

    def _query_many_reference(
        self,
        ids: list[int],
        stop: StoppingCondition,
        started: float,
        alpha: float,
        runs: "dict[int, _PrimePushRun]",
        fetch: Callable[[int], PrimePPV],
        on_iteration: "Callable[[int, QueryState], None] | None",
    ) -> list[DiskQueryResult]:
        """The historical per-query dict-loop rounds (benchmark baseline)."""
        results: list[DiskQueryResult] = []
        for position, q in enumerate(ids):
            hub_reads = 0
            if q in self.ppv_store:
                entry = fetch(q)
                hub_reads += 1
                estimate = entry.to_dense(self.graph_store.num_nodes)
                frontier = dict(
                    zip(entry.border_hubs.tolist(), entry.border_masses.tolist())
                )
                cluster_faults = 0
                truncated = False
            else:
                run = runs[q]
                estimate = run.scores.copy()
                frontier = dict(run.border)
                cluster_faults = run.drains
                truncated = run.truncated
            callback = None
            if on_iteration is not None:
                callback = (
                    lambda state, _position=position: on_iteration(
                        _position, state
                    )
                )
            iteration, error_history, hubs_expanded, requested = (
                _splice_rounds_reference(
                    estimate,
                    frontier,
                    stop,
                    alpha,
                    self.delta,
                    self.max_iterations,
                    fetch,
                    started,
                    on_iteration=callback,
                )
            )
            results.append(
                DiskQueryResult(
                    result=QueryResult(
                        query=q,
                        scores=estimate,
                        iterations=iteration,
                        error_history=error_history,
                        hubs_expanded=hubs_expanded,
                        seconds=time.perf_counter() - started,
                    ),
                    cluster_faults=cluster_faults,
                    hub_reads=hub_reads + requested,
                    truncated=truncated,
                )
            )
        return results

    def query_top_k_many(
        self,
        queries: Sequence[int],
        k: int = 10,
        max_iterations: int = 32,
    ) -> list[DiskTopKResult]:
        """Certified top-k for a batch of disk queries, preserving order.

        Each query iterates until its top-k certificate (the phi-gap rule
        of :mod:`repro.core.topk`) fires or ``max_iterations`` is spent,
        with the batch's cluster faults and hub reads amortised as in
        :meth:`query_many`.  As with the in-memory engines, build with
        ``delta = 0`` for a formally sound certificate; a truncated prime
        push stays sound because its missing mass is part of the Eq. 6
        error the certificate already budgets for.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        stop = StopWhenCertified(k=k, max_iterations=max_iterations)
        return [
            DiskTopKResult(
                topk=top_k_result(r.result, k),
                cluster_faults=r.cluster_faults,
                hub_reads=r.hub_reads,
                truncated=r.truncated,
            )
            for r in self.query_many(queries, stop=stop)
        ]
