"""Unit tests for exact PPV solvers."""

import numpy as np
import pytest

from repro.core.exact import exact_ppv, exact_ppv_dense_solve, exact_ppv_matrix
from repro.graph import from_edges
from repro.graph.generators import complete_graph, cycle_graph
from tests.conftest import A, ALPHA


class TestExactPPV:
    def test_matches_dense_solve(self, fig1_graph):
        power = exact_ppv(fig1_graph, A, alpha=ALPHA)
        solve = exact_ppv_dense_solve(fig1_graph, A, alpha=ALPHA)
        np.testing.assert_allclose(power, solve, atol=1e-10)

    def test_matches_dense_solve_cyclic(self, cyclic_graph):
        for query in range(cyclic_graph.num_nodes):
            power = exact_ppv(cyclic_graph, query, alpha=ALPHA)
            solve = exact_ppv_dense_solve(cyclic_graph, query, alpha=ALPHA)
            np.testing.assert_allclose(power, solve, atol=1e-10)

    def test_sums_to_one_without_dangling(self, cyclic_graph):
        scores = exact_ppv(cyclic_graph, 0, alpha=ALPHA)
        assert scores.sum() == pytest.approx(1.0, abs=1e-9)

    def test_dangling_loses_mass(self):
        graph = from_edges([(0, 1)], num_nodes=2)  # node 1 dangling
        scores = exact_ppv(graph, 0, alpha=ALPHA)
        # Mass: alpha at 0, (1-alpha)*alpha at 1, rest dies at node 1.
        assert scores[0] == pytest.approx(ALPHA)
        assert scores[1] == pytest.approx((1 - ALPHA) * ALPHA)
        assert scores.sum() < 1.0

    def test_query_score_at_least_alpha(self, small_social):
        scores = exact_ppv(small_social, 3, alpha=ALPHA)
        assert scores[3] >= ALPHA

    def test_symmetric_on_cycle(self):
        graph = cycle_graph(5)
        a = exact_ppv(graph, 0, alpha=ALPHA)
        b = exact_ppv(graph, 2, alpha=ALPHA)
        # Rotational symmetry: PPV of node 2 is PPV of node 0 rolled by 2.
        np.testing.assert_allclose(np.roll(a, 2), b, atol=1e-12)

    def test_uniform_teleport_on_complete_graph(self):
        graph = complete_graph(4)
        scores = exact_ppv(graph, 0, alpha=ALPHA)
        assert scores[0] > scores[1]
        assert scores[1] == pytest.approx(scores[2])

    def test_query_out_of_range(self, fig1_graph):
        with pytest.raises(ValueError):
            exact_ppv(fig1_graph, 99)
        with pytest.raises(ValueError):
            exact_ppv(fig1_graph, -1)

    def test_invalid_alpha(self, fig1_graph):
        with pytest.raises(ValueError):
            exact_ppv(fig1_graph, 0, alpha=1.5)


class TestExactPPVMatrix:
    def test_matches_single_queries(self, small_social):
        queries = [0, 7, 42]
        batch = exact_ppv_matrix(small_social, queries, alpha=ALPHA)
        for row, query in enumerate(queries):
            single = exact_ppv(small_social, query, alpha=ALPHA)
            np.testing.assert_allclose(batch[row], single, atol=1e-9)

    def test_shape(self, small_social):
        batch = exact_ppv_matrix(small_social, [1, 2], alpha=ALPHA)
        assert batch.shape == (2, small_social.num_nodes)

    def test_empty_batch(self, small_social):
        batch = exact_ppv_matrix(small_social, [], alpha=ALPHA)
        assert batch.shape == (0, small_social.num_nodes)

    def test_out_of_range_query(self, small_social):
        with pytest.raises(ValueError):
            exact_ppv_matrix(small_social, [0, 10**6])


class TestWeightedExactSolvers:
    def test_weighted_power_vs_solve(self):
        from repro.graph import from_weighted_edges

        graph = from_weighted_edges(
            [(0, 1, 2.0), (1, 2, 1.0), (2, 0, 3.0), (0, 2, 1.0), (2, 1, 0.5)]
        )
        for query in range(3):
            power = exact_ppv(graph, query, alpha=ALPHA)
            solve = exact_ppv_dense_solve(graph, query, alpha=ALPHA)
            np.testing.assert_allclose(power, solve, atol=1e-10)

    def test_batch_matches_weighted_singles(self):
        from repro.graph import from_weighted_edges

        graph = from_weighted_edges(
            [(0, 1, 2.0), (1, 0, 1.0), (1, 2, 4.0), (2, 1, 1.0)]
        )
        batch = exact_ppv_matrix(graph, [0, 2], alpha=ALPHA)
        np.testing.assert_allclose(
            batch[0], exact_ppv(graph, 0, alpha=ALPHA), atol=1e-9
        )
        np.testing.assert_allclose(
            batch[1], exact_ppv(graph, 2, alpha=ALPHA), atol=1e-9
        )
