"""Experiment harness: one driver per table/figure of Sect. 6.

Every driver returns a :class:`~repro.experiments.report.Table` whose rows
mirror what the paper reports; the benchmark scripts under ``benchmarks/``
print them and record timings.  Graph sizes are parameterised by a single
``scale`` knob so the full evaluation can run in minutes at default scale
(see DESIGN.md, "Substitutions", for why our graphs are synthetic and
smaller than the paper's).
"""

from repro.experiments.configs import CONFIGS, Config
from repro.experiments.datasets import dblp_graph, livejournal_graph
from repro.experiments.fig06_07_baselines import (
    fig5_table,
    fig6_table,
    fig7_tables,
    fig7_work_table,
    run_baseline_comparison,
)
from repro.experiments.fig08_09_policies import (
    fig8_table,
    fig9_table,
    run_policy_comparison,
)
from repro.experiments.fig10_11_hubs import fig10_table, fig11_table, run_hub_sweep
from repro.experiments.fig12_iterations import fig12_table, run_iteration_sweep
from repro.experiments.fig13_15_scalability import (
    fig13_table,
    fig14_table,
    fig15_table,
    run_sample_scalability,
    run_snapshot_scalability,
)
from repro.experiments.fig16_disk import fig16_table, run_disk_sweep
from repro.experiments.report import Table, format_table
from repro.experiments.runner import (
    MethodOutcome,
    run_fastppv,
    run_hubrank,
    run_montecarlo,
)
from repro.experiments.workloads import Workload, make_workload

__all__ = [
    "CONFIGS",
    "Config",
    "dblp_graph",
    "livejournal_graph",
    "Workload",
    "make_workload",
    "MethodOutcome",
    "run_fastppv",
    "run_hubrank",
    "run_montecarlo",
    "Table",
    "format_table",
    "run_baseline_comparison",
    "fig5_table",
    "fig6_table",
    "fig7_tables",
    "fig7_work_table",
    "run_policy_comparison",
    "fig8_table",
    "fig9_table",
    "run_hub_sweep",
    "fig10_table",
    "fig11_table",
    "run_iteration_sweep",
    "fig12_table",
    "run_snapshot_scalability",
    "run_sample_scalability",
    "fig13_table",
    "fig14_table",
    "fig15_table",
    "run_disk_sweep",
    "fig16_table",
]
