"""Batched online query engine: Algorithm 2 over many queries at once.

:class:`BatchFastPPV` executes the scalar engine of
:mod:`repro.core.query` for a whole batch of queries in lock-step rounds:

* **Iteration 0** runs one multi-source prime push
  (:func:`repro.core.prime.prime_push_many`) for all non-hub queries in
  the batch — same mass flow as the per-query push (reassociated sums
  only), with the per-round numpy dispatch cost paid once per batch
  instead of once per query.  Duplicate query ids share a single push.
* **Each incremental iteration** stacks the surviving frontiers into one
  CSR matrix and replaces the per-hub splice loop with two sparse matrix
  products against the cached :class:`~repro.core.splice.SpliceMatrix`
  (hub scores with the trivial-tour correction folded in, and hub border
  masses).  The per-(query, hub) ``delta`` gate of Algorithm 2 line 9 is
  applied entry-wise on the stacked frontier before the products.

Equivalence contract
--------------------
For any stopping condition that does not consult wall-clock time, results
are equivalent to running ``FastPPV.query`` per query: identical
``iterations``, ``hubs_expanded``, ``work_units`` and ``error_history``
length, with ``scores`` and error values matching to floating-point
round-off (~1e-14; the matrix products merely reassociate the same sums).
``seconds`` is per-query wall-clock *within the batch* (time from batch
start until the query finalised) and ``elapsed_seconds`` in
:class:`~repro.core.query.QueryState` is shared batch time — so
time-based stopping conditions remain usable but are inherently
non-deterministic, exactly as in the scalar engine.

Stopping conditions are shared across the batch and must therefore be
stateless (all built-in conditions are frozen dataclasses).

Caching
-------
A bounded LRU cache keyed by ``(query, stop)`` serves repeated-query
traffic: completed results for the pure built-in conditions
(``StopAfterIterations``, ``StopAtL1Error`` and ``any_of`` combinations
thereof) are returned as defensive copies without touching the graph.
Time-based or user-defined conditions are never cached.  Cache lookups
are bypassed when an ``on_iteration`` callback is supplied, so callback
invocation counts stay deterministic.  The cache is dropped whenever the
index's matrix lowering is rebuilt (see
:func:`repro.core.splice.invalidate_splice_cache`), so results never
outlive the index state they were computed from.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable, Sequence

import numpy as np
from scipy import sparse

from repro.core.index import PPVIndex
from repro.core.query import (
    DEFAULT_DELTA,
    QueryResult,
    QueryState,
    StopAfterIterations,
    StopAtL1Error,
    StoppingCondition,
    _AnyOf,
)
from repro.core.prime import prime_push_many
from repro.core.splice import SpliceMatrix, splice_matrix
from repro.core.topk import StopWhenCertified, TopKResult, top_k_result

BatchCallback = Callable[[int, QueryState], None]
"""Per-query iteration callback: ``(position_in_batch, state)``.

Invoked once per executed iteration per query (iteration 0 included),
mirroring the scalar engine's ``on_iteration`` — the first argument is
the query's position in the ``queries`` sequence, so duplicate query ids
remain distinguishable.
"""

DEFAULT_CACHE_SIZE = 256
"""Default capacity of the completed-PPV LRU cache."""

_CHUNK_ELEMENT_BUDGET = 1 << 22
"""Target elements (~32 MB of float64) per dense working matrix; the
default chunk size is derived from this so large graphs are processed in
memory-bounded slices rather than one ``batch x n`` allocation."""


def _cacheable(stop: StoppingCondition) -> bool:
    """Whether results under ``stop`` are deterministic and keyable."""
    if isinstance(stop, (StopAfterIterations, StopAtL1Error, StopWhenCertified)):
        return True
    if isinstance(stop, _AnyOf):
        return all(_cacheable(c) for c in stop.conditions)
    return False


def batch_safe(stop: StoppingCondition) -> bool:
    """Whether batching cannot change what ``stop`` means per query.

    Only the pure, stateless built-ins qualify
    (:class:`StopAfterIterations`, :class:`StopAtL1Error`,
    :class:`~repro.core.topk.StopWhenCertified` and ``any_of``
    combinations of them).  :class:`StopAfterTime` reads
    ``QueryState.elapsed_seconds`` — shared batch time here, a per-query
    budget in the scalar engine — and arbitrary user conditions may be
    stateful or time-reading in ways that cannot be introspected, so
    ``FastPPV.query_many`` keeps all of those on the scalar per-query
    path.  Pass such conditions to :meth:`BatchFastPPV.query_many`
    directly to opt in to shared-clock, interleaved-evaluation batch
    semantics.
    """
    return _cacheable(stop)


class _Frontier:
    """One query's frontier: hub *rows* with arrival masses."""

    __slots__ = ("rows", "masses")

    def __init__(self, rows: np.ndarray, masses: np.ndarray) -> None:
        self.rows = rows
        self.masses = masses


class BatchFastPPV:
    """Batch FastPPV engine (see module docstring).

    Parameters mirror :class:`~repro.core.query.FastPPV`; in addition:

    Parameters
    ----------
    cache_size:
        Capacity of the completed-PPV LRU cache (0 disables it).
    chunk_size:
        Maximum queries processed per dense working set; bounds the
        ``chunk_size x num_nodes`` estimate/push matrices.  Defaults to
        a graph-size-aware value keeping each dense matrix around
        ``_CHUNK_ELEMENT_BUDGET`` elements (at least 16 queries, at most
        512).
    """

    def __init__(
        self,
        graph,
        index: PPVIndex,
        delta: float = DEFAULT_DELTA,
        max_iterations: int = 64,
        online_epsilon: float | None = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        chunk_size: int | None = None,
    ) -> None:
        if index.hub_mask.shape != (graph.num_nodes,):
            raise ValueError("index was built for a different graph size")
        if delta < 0.0:
            raise ValueError("delta must be non-negative")
        if chunk_size is None:
            chunk_size = max(
                16,
                min(512, _CHUNK_ELEMENT_BUDGET // max(1, graph.num_nodes)),
            )
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.graph = graph
        self.index = index
        self.delta = delta
        self.max_iterations = max_iterations
        self.online_epsilon = (
            online_epsilon if online_epsilon is not None else index.epsilon
        )
        self.cache_size = cache_size
        self.chunk_size = chunk_size
        self._cache: OrderedDict[tuple, QueryResult] = OrderedDict()
        self._cache_lowering: SpliceMatrix | None = None

    # ------------------------------------------------------------------ #

    @property
    def splice(self) -> SpliceMatrix:
        """The matrix lowering of the index.

        Resolved through :func:`repro.core.splice.splice_matrix` on every
        access (a cheap attribute lookup once built) so that
        :func:`repro.core.splice.invalidate_splice_cache` takes effect for
        engines that already exist.
        """
        return splice_matrix(self.index)

    def query(
        self,
        query: int,
        stop: StoppingCondition | None = None,
        on_iteration: Callable[[QueryState], None] | None = None,
    ) -> QueryResult:
        """Single query through the batch path (batch of one)."""
        callback: BatchCallback | None = None
        if on_iteration is not None:
            callback = lambda _position, state: on_iteration(state)
        return self.query_many([query], stop=stop, on_iteration=callback)[0]

    def query_many(
        self,
        queries: Sequence[int],
        stop: StoppingCondition | None = None,
        on_iteration: BatchCallback | None = None,
    ) -> list[QueryResult]:
        """Estimate the PPVs of ``queries``, preserving order.

        Parameters
        ----------
        queries:
            Query node ids (duplicates allowed; they share iteration-0
            work but produce independent results).
        stop:
            Shared stopping condition, evaluated per query after every
            iteration; defaults to the paper's ``StopAfterIterations(2)``.
            Must be stateless — the same object gates every query.
        on_iteration:
            Optional :data:`BatchCallback` invoked as
            ``on_iteration(position, state)`` after every executed
            iteration of every query (iteration 0 included).  Supplying a
            callback bypasses the result cache so invocation counts stay
            exact.
        """
        ids = [int(q) for q in queries]
        for q in ids:
            if not 0 <= q < self.graph.num_nodes:
                raise ValueError(f"query node {q} out of range")
        if stop is None:
            stop = StopAfterIterations(2)

        results: list[QueryResult | None] = [None] * len(ids)
        # Completed results are only valid for the lowering they were
        # computed against: an invalidate_splice_cache (after an in-place
        # index mutation) rebuilds the SpliceMatrix, which drops the
        # result cache here too.
        lowering = self.splice
        if lowering is not self._cache_lowering:
            self._cache.clear()
            self._cache_lowering = lowering
        cache_key = None
        if self.cache_size > 0 and _cacheable(stop):
            cache_key = lambda q: (q, stop)
        misses: list[int] = []
        for position, q in enumerate(ids):
            hit = None
            if cache_key is not None and on_iteration is None:
                hit = self._cache_get(cache_key(q))
            if hit is not None:
                results[position] = hit
            else:
                misses.append(position)

        for start in range(0, len(misses), self.chunk_size):
            chunk = misses[start : start + self.chunk_size]
            for position, result in zip(
                chunk, self._run_chunk(ids, chunk, stop, on_iteration)
            ):
                results[position] = result
                if cache_key is not None:
                    self._cache_put(cache_key(ids[position]), result)
        return results  # type: ignore[return-value]

    def query_top_k_many(
        self,
        queries: Sequence[int],
        k: int = 10,
        max_iterations: int = 32,
        on_iteration: BatchCallback | None = None,
    ) -> list[TopKResult]:
        """Certified top-k for a whole batch of queries, preserving order.

        Batch-retirement contract
        -------------------------
        The batch runs in lock-step rounds, but every query carries its
        *own* top-k certificate (the phi-gap rule of
        :mod:`repro.core.topk`): after each round the certificates of all
        in-flight queries are checked in one vectorised pass
        (:meth:`~repro.core.topk.StopWhenCertified.should_stop_many`),
        and a query **retires from the batch the moment its certificate
        fires** — it stops consuming rounds while uncertified neighbours
        keep iterating towards ``max_iterations``.  Each query therefore
        performs exactly as many incremental iterations as the scalar
        :func:`~repro.core.topk.query_top_k` would (same certified sets,
        same per-query iteration counts), with the per-round work batched
        into the two sparse matrix products of the chunk engine.

        Certificate soundness follows the scalar contract: build the
        engine with ``delta = 0`` for a formally sound certificate (a
        positive ``delta`` makes the Eq. 6 error slightly optimistic
        about pruned mass).  Completed results are served from the LRU
        cache keyed by ``(query, StopWhenCertified(k, max_iterations))``,
        so repeats of a certified query cost no graph work.

        Parameters
        ----------
        queries:
            Query node ids (duplicates allowed).
        k:
            Size of the wanted top set.
        max_iterations:
            Per-query certificate budget; queries whose certificate never
            fires within it are returned with ``certified=False``.
        on_iteration:
            Optional :data:`BatchCallback`, as in :meth:`query_many`
            (supplying it bypasses the result cache).
        """
        if k <= 0:
            raise ValueError("k must be positive")
        stop = StopWhenCertified(k=k, max_iterations=max_iterations)
        results = self.query_many(queries, stop=stop, on_iteration=on_iteration)
        return [top_k_result(result, k) for result in results]

    # ------------------------------------------------------------------ #

    @staticmethod
    def _copy_result(result: QueryResult) -> QueryResult:
        """Deep-enough copy to decouple cache entries from callers."""
        return QueryResult(
            query=result.query,
            scores=result.scores.copy(),
            iterations=result.iterations,
            error_history=list(result.error_history),
            hubs_expanded=result.hubs_expanded,
            seconds=result.seconds,
            work_units=result.work_units,
        )

    def _cache_get(self, key: tuple) -> QueryResult | None:
        cached = self._cache.get(key)
        if cached is None:
            return None
        self._cache.move_to_end(key)
        return self._copy_result(cached)

    def _cache_put(self, key: tuple, result: QueryResult) -> None:
        self._cache[key] = self._copy_result(result)
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    # ------------------------------------------------------------------ #

    def _run_chunk(
        self,
        ids: list[int],
        positions: list[int],
        stop: StoppingCondition,
        on_iteration: BatchCallback | None,
    ) -> list[QueryResult]:
        """Run the batch rounds for the queries at ``positions``."""
        graph, index, splice = self.graph, self.index, self.splice
        n = graph.num_nodes
        alpha = index.alpha
        delta = self.delta
        k = len(positions)
        started = time.perf_counter()

        # ---- iteration 0: one multi-source push for all non-hub queries.
        push_sources: list[int] = []
        push_row_of: dict[int, int] = {}
        for i in positions:
            q = ids[i]
            if q not in index and q not in push_row_of:
                push_row_of[q] = len(push_sources)
                push_sources.append(q)
        push_scores, push_border, push_edges = prime_push_many(
            graph,
            np.asarray(push_sources, dtype=np.int64),
            index.hub_mask,
            alpha=alpha,
            epsilon=self.online_epsilon,
        )

        estimate = np.zeros((k, n))
        frontiers: list[_Frontier] = []
        error_history: list[list[float]] = []
        iterations = np.zeros(k, dtype=np.int64)
        hubs_expanded = np.zeros(k, dtype=np.int64)
        work_units = np.zeros(k, dtype=np.int64)
        seconds = np.zeros(k)

        for local, i in enumerate(positions):
            q = ids[i]
            if q in index:
                entry = index.get(q)
                estimate[local, entry.nodes] = entry.scores
                rows = splice.rows_of(entry.border_hubs)
                masses = entry.border_masses.astype(np.float64, copy=True)
            else:
                row = push_row_of[q]
                estimate[local] = push_scores[row]
                border_nodes = np.nonzero(push_border[row])[0]
                rows = splice.rows_of(border_nodes)
                masses = push_border[row, border_nodes]
                work_units[local] = push_edges[row]
            frontiers.append(_Frontier(rows, masses))
            error_history.append([1.0 - float(estimate[local].sum())])

        def state_of(local: int) -> QueryState:
            return QueryState(
                iteration=int(iterations[local]),
                l1_error=error_history[local][-1],
                elapsed_seconds=time.perf_counter() - started,
                frontier_size=frontiers[local].rows.size,
                scores=estimate[local],
            )

        if on_iteration is not None:
            for local, i in enumerate(positions):
                on_iteration(i, state_of(local))

        # ---- incremental rounds: splice whole frontiers at once.
        # Conditions exposing a vectorised ``should_stop_many`` (e.g. the
        # certified top-k rule) are evaluated for every in-flight query of
        # the round in one pass instead of per-query Python calls; the
        # decisions are identical by that method's contract.
        stop_many = getattr(stop, "should_stop_many", None)
        active = list(range(k))
        while active:
            if stop_many is not None:
                rows = np.asarray(active, dtype=np.int64)
                stop_mask = np.asarray(
                    stop_many(
                        iterations[rows],
                        np.array([error_history[local][-1] for local in active]),
                        estimate[rows],
                    ),
                    dtype=bool,
                )
            runnable: list[int] = []
            for offset, local in enumerate(active):
                frontier = frontiers[local]
                if (
                    frontier.rows.size == 0
                    or iterations[local] >= self.max_iterations
                    or (
                        stop_mask[offset]
                        if stop_many is not None
                        else stop.should_stop(state_of(local))
                    )
                ):
                    seconds[local] = time.perf_counter() - started
                else:
                    runnable.append(local)
            if not runnable:
                break
            active = runnable

            lens = np.array(
                [frontiers[local].rows.size for local in runnable], dtype=np.int64
            )
            cols = np.concatenate([frontiers[local].rows for local in runnable])
            data = np.concatenate([frontiers[local].masses for local in runnable])
            row_ids = np.repeat(np.arange(len(runnable)), lens)

            # Per-entry delta gate (Algorithm 2, line 9): a frontier hub is
            # expanded only if its increment score alpha * mass exceeds
            # delta; gated entries also drop out of the next frontier.
            keep = alpha * data > delta
            kept_rows = row_ids[keep]
            kept_cols = cols[keep]
            counts = np.bincount(kept_rows, minlength=len(runnable))
            indptr = np.zeros(len(runnable) + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            gated = sparse.csr_matrix(
                (data[keep], kept_cols, indptr),
                shape=(len(runnable), splice.num_hubs),
            )

            increment = (gated @ splice.scores).toarray()
            next_frontier = (gated @ splice.borders).tocsr()
            work_inc = np.bincount(
                kept_rows,
                weights=splice.work[kept_cols].astype(np.float64),
                minlength=len(runnable),
            ).astype(np.int64)

            locals_idx = np.asarray(runnable, dtype=np.int64)
            estimate[locals_idx] += increment
            hubs_expanded[locals_idx] += counts
            work_units[locals_idx] += work_inc
            iterations[locals_idx] += 1
            for j, local in enumerate(runnable):
                frontiers[local] = _Frontier(
                    next_frontier.indices[
                        next_frontier.indptr[j] : next_frontier.indptr[j + 1]
                    ].astype(np.int64),
                    next_frontier.data[
                        next_frontier.indptr[j] : next_frontier.indptr[j + 1]
                    ],
                )
                error_history[local].append(1.0 - float(estimate[local].sum()))
                if on_iteration is not None:
                    on_iteration(positions[local], state_of(local))

        return [
            QueryResult(
                query=ids[i],
                # Copy out of the shared chunk matrix so one retained
                # result cannot pin the whole (chunk_size, n) buffer.
                scores=estimate[local].copy(),
                iterations=int(iterations[local]),
                error_history=error_history[local],
                hubs_expanded=int(hubs_expanded[local]),
                seconds=float(seconds[local]),
                work_units=int(work_units[local]),
            )
            for local, i in enumerate(positions)
        ]
