"""Graph construction: incremental builder and edge-list constructor."""

from __future__ import annotations

from typing import Hashable, Iterable

import numpy as np

from repro.graph.digraph import DiGraph


class GraphBuilder:
    """Accumulates edges and emits an immutable :class:`DiGraph`.

    Supports both integer nodes (pre-sized via ``num_nodes``) and arbitrary
    hashable labels (auto-interned).  Duplicate edges are merged at build
    time — for weighted edges their weights are *summed* (parallel edges
    behave like one edge of combined capacity, matching random-walk
    semantics).  A graph is weighted as soon as any edge carries an
    explicit weight; unweighted edges count as weight 1.  Self-loops are
    kept unless ``drop_self_loops`` is set, since the random-surfer model
    handles them naturally.
    """

    def __init__(self, num_nodes: int | None = None) -> None:
        self._srcs: list[int] = []
        self._dsts: list[int] = []
        self._weights: list[float] = []
        self._any_weighted = False
        self._labels: list[Hashable] | None = None
        self._label_ids: dict[Hashable, int] | None = None
        self._num_nodes = num_nodes
        self._labelled = num_nodes is None

    def _intern(self, label: Hashable) -> int:
        if self._labels is None:
            self._labels = []
            self._label_ids = {}
        assert self._label_ids is not None
        node = self._label_ids.get(label)
        if node is None:
            node = len(self._labels)
            self._labels.append(label)
            self._label_ids[label] = node
        return node

    def add_node(self, label: Hashable) -> int:
        """Ensure a node exists; returns its dense id."""
        if not self._labelled:
            node = int(label)
            if node < 0:
                raise ValueError("node ids must be non-negative")
            assert self._num_nodes is not None
            if node >= self._num_nodes:
                raise ValueError(f"node {node} >= num_nodes {self._num_nodes}")
            return node
        return self._intern(label)

    def add_edge(
        self, src: Hashable, dst: Hashable, weight: float | None = None
    ) -> None:
        """Add a directed edge ``src -> dst`` with an optional weight."""
        if weight is not None:
            if weight <= 0.0:
                raise ValueError("edge weights must be positive")
            self._any_weighted = True
        self._srcs.append(self.add_node(src))
        self._dsts.append(self.add_node(dst))
        self._weights.append(1.0 if weight is None else float(weight))

    def add_undirected_edge(
        self, a: Hashable, b: Hashable, weight: float | None = None
    ) -> None:
        """Add the edge in both directions (undirected semantics)."""
        self.add_edge(a, b, weight)
        self.add_edge(b, a, weight)

    def add_edges(self, edges: Iterable[tuple[Hashable, Hashable]]) -> None:
        """Add many directed (unweighted) edges."""
        for src, dst in edges:
            self.add_edge(src, dst)

    def add_weighted_edges(
        self, edges: Iterable[tuple[Hashable, Hashable, float]]
    ) -> None:
        """Add many directed weighted edges as ``(src, dst, weight)``."""
        for src, dst, weight in edges:
            self.add_edge(src, dst, weight)

    @property
    def num_pending_edges(self) -> int:
        """Edges added so far (before deduplication)."""
        return len(self._srcs)

    def build(self, drop_self_loops: bool = False) -> DiGraph:
        """Materialise the CSR graph."""
        if self._labelled:
            n = len(self._labels) if self._labels is not None else 0
        else:
            assert self._num_nodes is not None
            n = self._num_nodes
        srcs = np.asarray(self._srcs, dtype=np.int64)
        dsts = np.asarray(self._dsts, dtype=np.int64)
        weights = np.asarray(self._weights, dtype=np.float64)
        if drop_self_loops and srcs.size:
            keep = srcs != dsts
            srcs, dsts, weights = srcs[keep], dsts[keep], weights[keep]
        if srcs.size:
            # Merge parallel edges: group by (src, dst), summing weights.
            key = srcs * n + dsts
            unique_keys, inverse = np.unique(key, return_inverse=True)
            merged = np.zeros(unique_keys.size)
            np.add.at(merged, inverse, weights)
            srcs = unique_keys // n
            dsts = unique_keys % n
            weights = merged
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(srcs, minlength=n), out=indptr[1:])
        return DiGraph(
            indptr,
            dsts.astype(np.int32),
            labels=self._labels,
            weights=weights if self._any_weighted else None,
        )


def from_edges(
    edges: Iterable[tuple[int, int]],
    num_nodes: int | None = None,
    undirected: bool = False,
) -> DiGraph:
    """Build a :class:`DiGraph` from an iterable of integer edge pairs.

    Parameters
    ----------
    edges:
        Pairs ``(src, dst)``.
    num_nodes:
        Total node count; inferred as ``max endpoint + 1`` when omitted.
    undirected:
        Store each edge in both directions.
    """
    pairs = list(edges)
    if num_nodes is None:
        num_nodes = 1 + max((max(s, d) for s, d in pairs), default=-1)
    builder = GraphBuilder(num_nodes=num_nodes)
    for src, dst in pairs:
        if undirected:
            builder.add_undirected_edge(src, dst)
        else:
            builder.add_edge(src, dst)
    return builder.build()


def from_weighted_edges(
    edges: Iterable[tuple[int, int, float]],
    num_nodes: int | None = None,
    undirected: bool = False,
) -> DiGraph:
    """Build a weighted :class:`DiGraph` from ``(src, dst, weight)`` triples.

    Parallel edges have their weights summed; see
    :class:`GraphBuilder`.
    """
    triples = list(edges)
    if num_nodes is None:
        num_nodes = 1 + max((max(s, d) for s, d, _ in triples), default=-1)
    builder = GraphBuilder(num_nodes=num_nodes)
    for src, dst, weight in triples:
        if undirected:
            builder.add_undirected_edge(src, dst, weight)
        else:
            builder.add_edge(src, dst, weight)
    return builder.build()
