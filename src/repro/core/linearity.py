"""Multi-node queries via the Linearity Theorem (Jeh & Widom).

The PPV of a weighted query set ``{(q_i, w_i)}`` with ``sum w_i = 1`` is
``sum_i w_i * r_{q_i}`` — so a multi-node query decomposes into single-node
queries, which is why the paper (Sect. 1 and Sect. 6, "Test queries") only
evaluates single-node queries.  This module provides the assembly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.query import FastPPV, QueryResult, StoppingCondition


def multi_node_ppv(
    engine: FastPPV,
    queries: Sequence[int],
    weights: Sequence[float] | None = None,
    stop: StoppingCondition | None = None,
) -> QueryResult:
    """Estimated PPV of a multi-node query.

    Parameters
    ----------
    engine:
        A :class:`~repro.core.query.FastPPV` engine.
    queries:
        Query node ids (the teleport set).
    weights:
        Teleport preference per node; uniform when omitted.  Normalised to
        sum to 1.
    stop:
        Stopping condition forwarded to each single-node query.

    Returns
    -------
    QueryResult
        ``query`` is the first node of the set; ``scores`` is the weighted
        combination; ``error_history`` combines the per-query histories
        weighted the same way (valid since L1 error is linear over the
        under-approximations).
    """
    if len(queries) == 0:
        raise ValueError("a query needs at least one node")
    if weights is None:
        weight_arr = np.full(len(queries), 1.0 / len(queries))
    else:
        weight_arr = np.asarray(weights, dtype=float)
        if weight_arr.shape != (len(queries),):
            raise ValueError("one weight per query node required")
        if np.any(weight_arr < 0.0) or weight_arr.sum() <= 0.0:
            raise ValueError("weights must be non-negative with positive sum")
        weight_arr = weight_arr / weight_arr.sum()

    results = [engine.query(int(q), stop=stop) for q in queries]
    scores = np.zeros(engine.graph.num_nodes)
    for weight, result in zip(weight_arr, results):
        scores += weight * result.scores

    depth = max(len(r.error_history) for r in results)
    combined_history = []
    for level in range(depth):
        error = 0.0
        for weight, result in zip(weight_arr, results):
            history = result.error_history
            error += weight * history[min(level, len(history) - 1)]
        combined_history.append(error)

    return QueryResult(
        query=int(queries[0]),
        scores=scores,
        iterations=max(r.iterations for r in results),
        error_history=combined_history,
        hubs_expanded=sum(r.hubs_expanded for r in results),
        seconds=sum(r.seconds for r in results),
    )
