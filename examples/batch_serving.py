"""Serving workloads: the batched engine, parallel build, PPV caching.

Simulates a multi-user serving scenario: the offline index is built with
parallel workers, incoming queries are served in batches through the
sparse-matrix engine (`BatchFastPPV`), and repeated-query traffic hits
the bounded LRU cache of completed PPVs.

Run with:  python examples/batch_serving.py
"""

import time

import numpy as np

from repro import (
    BatchFastPPV,
    FastPPV,
    StopAfterIterations,
    build_index,
    select_hubs,
    social_graph,
)


def main() -> None:
    # 1. A graph and a parallel offline build (chunked across workers).
    graph = social_graph(num_nodes=4000, seed=42)
    hubs = select_hubs(graph, num_hubs=400)
    index = build_index(graph, hubs, workers=4)
    print(f"graph: {graph}")
    print(
        f"index: {index.num_hubs} hubs built with 4 workers "
        f"in {index.stats.build_seconds:.2f}s"
    )

    # 2. A batch of user queries, served in one shot: iteration 0 is a
    #    single multi-source push, every further iteration is two sparse
    #    matrix products over the whole batch.
    engine = BatchFastPPV(graph, index, delta=1e-4, online_epsilon=1e-5)
    rng = np.random.default_rng(7)
    batch = rng.choice(graph.num_nodes, size=64, replace=False).tolist()
    stop = StopAfterIterations(2)

    started = time.perf_counter()
    results = engine.query_many(batch, stop=stop)
    batch_seconds = time.perf_counter() - started
    print(
        f"\nbatch of {len(batch)}: {batch_seconds * 1000:.0f} ms "
        f"({len(batch) / batch_seconds:.0f} queries/s), "
        f"mean L1 error {np.mean([r.l1_error for r in results]):.4f}"
    )

    # 3. The same traffic, one query at a time (the scalar engine).
    scalar = FastPPV(graph, index, delta=1e-4, online_epsilon=1e-5)
    started = time.perf_counter()
    scalar_results = [scalar.query(q, stop=stop) for q in batch]
    scalar_seconds = time.perf_counter() - started
    print(
        f"scalar loop: {scalar_seconds * 1000:.0f} ms "
        f"({len(batch) / scalar_seconds:.0f} queries/s) "
        f"-> batch speedup {scalar_seconds / batch_seconds:.1f}x"
    )
    worst = max(
        float(np.abs(b.scores - s.scores).max())
        for b, s in zip(results, scalar_results)
    )
    print(f"largest score deviation from the scalar engine: {worst:.2e}")

    # 4. Repeated-query traffic: completed PPVs come from the LRU cache.
    started = time.perf_counter()
    engine.query_many(batch, stop=stop)
    cached_seconds = time.perf_counter() - started
    print(
        f"\nsame batch again (all cache hits): {cached_seconds * 1000:.1f} ms"
    )


if __name__ == "__main__":
    main()
