"""Query workloads: uniformly sampled test queries plus exact ground truth.

The paper samples 1000 random nodes per graph and reports averages.  We
default to smaller workloads (ground truth is the expensive part at our
scale) — the workload size is a knob on every driver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exact import exact_ppv_matrix
from repro.graph.digraph import DiGraph
from repro.graph.pagerank import DEFAULT_ALPHA


@dataclass(frozen=True)
class Workload:
    """Test queries with precomputed exact PPVs.

    Attributes
    ----------
    queries:
        Query node ids (uniformly sampled without replacement).
    exact:
        ``(len(queries), n)`` matrix; row ``i`` is the exact PPV of
        ``queries[i]``.
    alpha:
        Teleport probability the ground truth was computed with.
    """

    queries: np.ndarray
    exact: np.ndarray
    alpha: float

    def __len__(self) -> int:
        return self.queries.size

    def __iter__(self):
        """Yield ``(query, exact_ppv_row)`` pairs."""
        return zip(self.queries.tolist(), self.exact)


def make_workload(
    graph: DiGraph,
    num_queries: int = 50,
    seed: int = 0,
    alpha: float = DEFAULT_ALPHA,
) -> Workload:
    """Sample a uniform query workload and compute its ground truth."""
    if num_queries <= 0:
        raise ValueError("num_queries must be positive")
    num_queries = min(num_queries, graph.num_nodes)
    rng = np.random.default_rng(seed)
    queries = np.sort(
        rng.choice(graph.num_nodes, size=num_queries, replace=False)
    ).astype(np.int64)
    exact = exact_ppv_matrix(graph, queries, alpha=alpha)
    return Workload(queries=queries, exact=exact, alpha=alpha)
