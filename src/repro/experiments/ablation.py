"""Ablations beyond the paper's figures.

Three design knobs the paper fixes by fiat get sensitivity sweeps here:

* ``delta`` — the border-hub expansion threshold (Sect. 5.2 fixes 0.005);
* ``clip`` — the storage clip (Sect. 6 fixes 1e-4);
* the Theorem 2 bound — measured error vs the analytic
  ``(1 - alpha)^(k+2)`` envelope.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.errors import l1_error_bound
from repro.core.hubs import select_hubs
from repro.core.index import PPVIndex, build_index
from repro.core.query import FastPPV, StopAfterIterations
from repro.experiments.report import Table
from repro.experiments.runner import run_fastppv
from repro.experiments.workloads import Workload
from repro.graph.digraph import DiGraph
from repro.graph.pagerank import global_pagerank


def delta_sweep_table(
    graph: DiGraph,
    workload: Workload,
    index: PPVIndex,
    deltas: Sequence[float] = (0.0, 1e-4, 1e-3, 5e-3, 2e-2),
    eta: int = 2,
) -> Table:
    """Sensitivity of accuracy/time to the delta threshold."""
    table = Table(
        title="Ablation — border-hub threshold delta",
        headers=["delta", "Kendall", "Precision", "L1 sim", "Time (ms)"],
    )
    for delta in deltas:
        outcome = run_fastppv(
            graph, workload, num_hubs=index.num_hubs, eta=eta, delta=delta,
            index=index,
        )
        table.add_row(
            delta,
            outcome.accuracy.kendall,
            outcome.accuracy.precision,
            outcome.accuracy.l1_similarity,
            outcome.online_ms_per_query,
        )
    return table


def clip_sweep_table(
    graph: DiGraph,
    workload: Workload,
    num_hubs: int,
    clips: Sequence[float] = (0.0, 1e-5, 1e-4, 1e-3),
    eta: int = 2,
) -> Table:
    """Sensitivity of space/accuracy to the storage clip threshold."""
    pagerank = global_pagerank(graph, alpha=workload.alpha)
    hubs = select_hubs(graph, num_hubs, alpha=workload.alpha, pagerank=pagerank)
    table = Table(
        title="Ablation — storage clip threshold",
        headers=["clip", "Space (MB)", "Kendall", "Precision", "L1 sim"],
    )
    for clip in clips:
        index = build_index(graph, hubs, alpha=workload.alpha, clip=clip)
        outcome = run_fastppv(
            graph, workload, num_hubs=num_hubs, eta=eta, index=index
        )
        table.add_row(
            clip,
            index.stats.megabytes,
            outcome.accuracy.kendall,
            outcome.accuracy.precision,
            outcome.accuracy.l1_similarity,
        )
    return table


def error_bound_table(
    graph: DiGraph,
    index: PPVIndex,
    queries: Sequence[int],
    max_eta: int = 8,
) -> Table:
    """Measured query-time L1 error vs the Theorem 2 bound."""
    engine = FastPPV(graph, index, delta=0.0)
    errors = np.zeros(max_eta + 1)
    for query in queries:
        result = engine.query(int(query), stop=StopAfterIterations(max_eta))
        history = result.error_history
        padded = history + [history[-1]] * (max_eta + 1 - len(history))
        errors += np.asarray(padded[: max_eta + 1])
    errors /= len(queries)
    table = Table(
        title="Ablation — measured L1 error vs Theorem 2 bound",
        headers=["k", "Measured error", "Bound (1-alpha)^(k+2)", "Slack factor"],
    )
    for k in range(max_eta + 1):
        bound = l1_error_bound(k, index.alpha)
        slack = bound / errors[k] if errors[k] > 0 else float("inf")
        table.add_row(k, float(errors[k]), bound, slack)
    return table
