"""Core FastPPV: scheduled approximation of Personalized PageRank.

Public surface:

* :func:`~repro.core.exact.exact_ppv` — ground-truth PPV (power iteration).
* :func:`~repro.core.hubs.select_hubs` — hub selection (expected utility and
  alternative policies, Sect. 4 / Sect. 6.2).
* :class:`~repro.core.index.PPVIndex` / :func:`~repro.core.index.build_index`
  — offline precomputation of prime PPVs (Algorithm 1).
* :class:`~repro.core.query.FastPPV` — incremental, accuracy-aware online
  query engine (Algorithm 2), with stopping conditions from
  :mod:`repro.core.query`.
* :class:`~repro.core.batch.BatchFastPPV` — the batched twin: whole
  workloads as sparse-matrix rounds over the
  :class:`~repro.core.splice.SpliceMatrix` lowering of the index, with a
  completed-PPV LRU cache (``FastPPV.batch_engine`` exposes it).
* :mod:`repro.core.errors` — the Theorem 2 error bound and query-time L1
  error.
* :mod:`repro.core.linearity` — multi-node queries via the Linearity
  Theorem.
* Extensions: :mod:`repro.core.dynamic` (incremental graph updates),
  :mod:`repro.core.autotune` (hub-count auto-configuration),
  :mod:`repro.core.hitting` (scheduled approximation of hitting time).
"""

from repro.core.autotune import AutotuneResult, autotune_hub_count
from repro.core.batch import BatchFastPPV
from repro.core.dynamic import add_edges, remove_edges, update_index
from repro.core.errors import l1_error_bound, query_time_l1_error
from repro.core.exact import exact_ppv, exact_ppv_matrix
from repro.core.hitting import (
    HittingEstimate,
    exact_hitting,
    scheduled_hitting,
)
from repro.core.hubs import HubPolicy, select_hubs
from repro.core.index import PPVIndex, build_index
from repro.core.linearity import multi_node_ppv
from repro.core.prime import (
    PrimePPV,
    prime_ppv,
    prime_push_many,
    prime_subgraph_nodes,
)
from repro.core.splice import (
    SpliceMatrix,
    build_splice_matrix,
    invalidate_splice_cache,
    splice_matrix,
)
from repro.core.query import (
    FastPPV,
    QueryResult,
    StopAfterIterations,
    StopAfterTime,
    StopAtL1Error,
    any_of,
)
from repro.core.reachability import (
    ReachabilityResult,
    reachability_query,
)
from repro.core.topk import (
    StopWhenCertified,
    TopKResult,
    query_top_k,
)

__all__ = [
    "exact_ppv",
    "exact_ppv_matrix",
    "HubPolicy",
    "select_hubs",
    "PrimePPV",
    "prime_ppv",
    "prime_subgraph_nodes",
    "PPVIndex",
    "build_index",
    "FastPPV",
    "BatchFastPPV",
    "SpliceMatrix",
    "build_splice_matrix",
    "splice_matrix",
    "invalidate_splice_cache",
    "prime_push_many",
    "QueryResult",
    "StopAfterIterations",
    "StopAtL1Error",
    "StopAfterTime",
    "any_of",
    "l1_error_bound",
    "query_time_l1_error",
    "multi_node_ppv",
    "query_top_k",
    "StopWhenCertified",
    "TopKResult",
    "add_edges",
    "remove_edges",
    "update_index",
    "autotune_hub_count",
    "AutotuneResult",
    "exact_hitting",
    "scheduled_hitting",
    "HittingEstimate",
    "ReachabilityResult",
    "reachability_query",
]
