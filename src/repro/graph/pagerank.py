"""Global (non-personalised) PageRank.

Used by hub selection (the "popularity" half of expected utility, Eq. 7)
and by the MonteCarlo baseline's hub policy.  Implemented as standard power
iteration on the CSR transition matrix with uniform teleportation; dangling
mass is redistributed uniformly, the textbook convention.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph

DEFAULT_ALPHA = 0.15
"""Teleport probability used throughout the paper (Sect. 6, "Parameters")."""


def global_pagerank(
    graph: DiGraph,
    alpha: float = DEFAULT_ALPHA,
    tol: float = 1e-10,
    max_iter: int = 200,
) -> np.ndarray:
    """PageRank scores of every node.

    Parameters
    ----------
    graph:
        The graph.
    alpha:
        Teleport probability (the paper's ``alpha = 0.15``).
    tol:
        L1 convergence tolerance between successive iterates.
    max_iter:
        Iteration cap; the result at the cap is returned if not converged
        (PageRank contracts at rate ``1 - alpha``, so 200 iterations are
        ample for any practical tolerance).

    Returns
    -------
    numpy.ndarray
        Probability vector of length ``n`` summing to 1.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    n = graph.num_nodes
    if n == 0:
        return np.zeros(0)
    matrix = graph.transition_matrix().T.tocsr()
    dangling = np.asarray(graph.out_degrees == 0)
    rank = np.full(n, 1.0 / n)
    teleport = np.full(n, alpha / n)
    for _ in range(max_iter):
        dangling_mass = rank[dangling].sum()
        new_rank = (1.0 - alpha) * (matrix @ rank + dangling_mass / n) + teleport
        delta = np.abs(new_rank - rank).sum()
        rank = new_rank
        if delta < tol:
            break
    return rank
