"""Observability across the serving stack, end to end.

The acceptance bar: a ``trace=True`` query through :class:`PPVClient`
against a two-shard :class:`ShardRouter` yields **one** trace — the
client's root span, the router front-end's server span, the service
queue/batch spans, the kernel span, and both shards' fetch spans all
share one trace id — while the served payload stays bitwise equal to
the untraced path.  Plus the service-level contracts: untraced queries
record nothing, ``ServiceStats.families`` snapshots are immutable, the
stats verb reports uptime/version/pid/metrics, and the slow-query log
captures cost counters with span trees attached.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro
from repro import build_index, select_hubs
from repro.obs import Observability
from repro.obs.trace import default_tracer
from repro.server import PPVClient, PPVServer, ServerConfig, ServerError
from repro.serving import PPVService, QuerySpec
from repro.sharding import ShardRouter, partition_index

QUERY_NODE = 7
OTHER_NODES = [3, 42, 99]


@pytest.fixture()
def service(small_social, small_social_index):
    obs = Observability()
    with PPVService.open(
        small_social_index, graph=small_social, cache_size=0, obs=obs
    ) as svc:
        yield svc


# --------------------------------------------------------------------- #
# Service-level tracing


def test_untraced_query_records_no_spans(service):
    service.query(QuerySpec(QUERY_NODE))
    assert len(service.obs.tracer) == 0


def test_traced_query_spans_the_service_stack(service):
    obs = service.obs
    root = obs.tracer.start_span("client.request")
    service.query(QuerySpec(QUERY_NODE).with_trace(root.context()))
    root.end()
    spans = obs.tracer.spans(trace_id=root.trace_id)
    names = {span["name"] for span in spans}
    assert {"service.queue", "service.batch", "service.cache",
            "engine.run_group", "client.request"} <= names
    assert {span["trace"] for span in spans} == {root.trace_id}
    by_name = {span["name"]: span for span in spans}
    assert by_name["service.batch"]["parent"] == root.span_id
    assert by_name["engine.run_group"]["parent"] == (
        by_name["service.batch"]["span"]
    )
    assert by_name["service.queue"]["attrs"]["batch_size"] >= 1


def test_traced_results_bitwise_equal_to_untraced(service):
    plain = service.query(QuerySpec(QUERY_NODE))
    span = service.obs.tracer.start_span("client.request")
    traced = service.query(QuerySpec(QUERY_NODE).with_trace(span.context()))
    span.end()
    assert np.array_equal(plain.scores, traced.scores)
    assert plain.iterations == traced.iterations
    assert plain.l1_error == traced.l1_error


def test_trace_field_does_not_split_cache_or_coalescing(
    small_social, small_social_index
):
    # Traced and untraced twins must hash/compare equal so they share
    # popularity-cache entries and coalescing groups.
    obs = Observability()
    with PPVService.open(
        small_social_index, graph=small_social, obs=obs
    ) as svc:
        svc.query(QuerySpec(QUERY_NODE))
        span = obs.tracer.start_span("client.request")
        svc.query(QuerySpec(QUERY_NODE).with_trace(span.context()))
        span.end()
        stats = svc.stats()
    assert stats.cache_hits >= 1


def test_service_metrics_cover_the_scheduler_cache_and_engine(service):
    service.query_many([QuerySpec(node) for node in OTHER_NODES])
    names = set(service.obs.registry.names())
    assert {
        "repro_queries_submitted_total",
        "repro_request_latency_seconds",
        "repro_family_latency_seconds",
        "repro_cache_hits_total",
        "repro_cache_misses_total",
        "repro_cache_evictions_total",
        "repro_cache_entries",
        "repro_batch_size",
        "repro_coalesce_delay_seconds",
        "repro_queue_depth",
        "repro_in_flight",
        "repro_batches_served_total",
        "repro_largest_batch",
    } <= names
    snap = service.obs.registry.snapshot()
    submitted = snap["repro_queries_submitted_total"]["samples"]
    assert submitted == [{"labels": ["ppv"], "value": len(OTHER_NODES)}]
    assert snap["repro_batch_size"]["samples"][0]["histogram"]["count"] >= 1


def test_slow_query_log_captures_cost_and_spans(
    small_social, small_social_index
):
    obs = Observability(slow_query_seconds=0.0)  # everything is "slow"
    with PPVService.open(
        small_social_index, graph=small_social, cache_size=0, obs=obs
    ) as svc:
        span = obs.tracer.start_span("client.request")
        svc.query(QuerySpec(QUERY_NODE).with_trace(span.context()))
        span.end()
    entries = obs.slow_log.entries(tracer=obs.tracer)
    assert len(entries) == 1
    entry = entries[0]
    assert entry["family"] == "ppv"
    assert entry["nodes"] == [QUERY_NODE]
    assert entry["seconds"] >= 0.0
    assert entry["iterations"] >= 1
    assert entry["batch_size"] >= 1
    assert entry["trace"] == span.trace_id
    assert {s["name"] for s in entry["spans"]} >= {"service.batch"}


# --------------------------------------------------------------------- #
# Satellite: ServiceStats.families immutability


def test_families_snapshot_is_a_deep_copy(service):
    service.query(QuerySpec(QUERY_NODE))
    first = service.stats()
    # Mutate the snapshot aggressively, nested structures included.
    first.families["ppv"]["submitted"] = 999
    first.families["ppv"]["latency"]["counts"][0] = 777
    first.families["ppv"]["latency"]["bounds"].clear()
    first.families.clear()
    second = service.stats()
    assert second.families["ppv"]["submitted"] == 1
    assert 777 not in second.families["ppv"]["latency"]["counts"]
    assert second.families["ppv"]["latency"]["bounds"]


# --------------------------------------------------------------------- #
# Wire layer: stats payload, trace verb


@pytest.fixture()
def served(small_social, small_social_index):
    obs = Observability(slow_query_seconds=0.0)
    with PPVService.open(
        small_social_index, graph=small_social, cache_size=0, obs=obs
    ) as svc:
        server = PPVServer(svc, ServerConfig(host="127.0.0.1", port=0))
        with server.background() as (host, port):
            with PPVClient(host, port) as client:
                yield client, obs


def test_stats_payload_identity_and_metrics(served):
    client, _obs = served
    client.query([QUERY_NODE], eta=2)
    payload = client.stats()
    assert payload["version"] == repro.__version__
    assert payload["uptime_seconds"] > 0.0
    assert payload["pid"] > 0
    assert "repro_server_requests_total" in payload["metrics"]
    assert "repro_queries_submitted_total" in payload["metrics"]
    slow = payload["slow_queries"]
    assert slow and slow[0]["nodes"] == [QUERY_NODE]


def test_trace_verb_round_trip(served):
    client, _obs = served
    client.query([QUERY_NODE], eta=2, trace=True)
    trace_id = client.last_trace_id
    assert trace_id
    payload = client.trace(trace_id)
    assert payload["schema"] == 1
    names = {span["name"] for span in payload["spans"]}
    assert {"server.query", "service.queue", "service.batch",
            "engine.run_group"} <= names
    assert {span["trace"] for span in payload["spans"]} == {trace_id}
    assert payload["count"] == len(payload["spans"])
    # Unfiltered fetch returns at least as much.
    assert len(client.trace()["spans"]) >= payload["count"]
    assert len(client.trace(limit=1)["spans"]) <= 1


def test_trace_verb_rejects_bad_arguments(served):
    client, _obs = served
    with pytest.raises(ServerError):
        client.request({"verb": "trace", "trace_id": 7})
    with pytest.raises(ServerError):
        client.request({"verb": "trace", "limit": 0})
    with pytest.raises(ServerError):
        client.request({"verb": "trace", "limit": True})


def test_malformed_trace_field_is_rejected(served):
    client, _obs = served
    for bad in (
        {"id": ""},
        {"id": 5, "schema": 1},
        {"id": "abc", "schema": 99},
        "not-a-dict",
    ):
        with pytest.raises(ServerError):
            client.request({"verb": "query", "node": QUERY_NODE, "trace": bad})


def test_query_many_traces_each_query(served):
    client, _obs = served
    client.query_many([[n] for n in OTHER_NODES], eta=2, trace=True)
    assert len(client.last_trace_ids) == len(OTHER_NODES)
    assert len(set(client.last_trace_ids)) == len(OTHER_NODES)
    for trace_id in client.last_trace_ids:
        spans = client.trace(trace_id)["spans"]
        assert {span["trace"] for span in spans} == {trace_id}
        assert any(span["name"] == "server.query" for span in spans)


# --------------------------------------------------------------------- #
# The acceptance bar: one trace across a two-shard fleet


@pytest.fixture(scope="module")
def traced_router(tmp_path_factory, small_social):
    hubs = select_hubs(small_social, num_hubs=40)
    index = build_index(small_social, hubs, epsilon=1e-6)
    root = tmp_path_factory.mktemp("obs_parts")
    partition_index(small_social, index, 2, root)
    # cache_size=0 / cache_hubs=0 so every query actually runs the
    # kernel and refetches hubs — the spans under test must exist.
    router = ShardRouter(root, cache_size=0, cache_hubs=0)
    with router as (host, port):
        yield router, host, port


def test_one_trace_spans_client_to_both_shards(traced_router):
    router, host, port = traced_router
    with PPVClient(host, port) as client:
        plain = client.query([QUERY_NODE], eta=2)
        traced = client.query([QUERY_NODE], eta=2, trace=True)
        trace_id = client.last_trace_id
        # Served results are bitwise equal to the untraced path (scores
        # travel as JSON floats: equal payloads == equal bits).
        assert plain == traced

        # The batch/server spans finish on the drain thread moments
        # after the reply is sent; poll briefly for the full tree.
        wanted = {"server.query", "service.queue", "service.batch",
                  "engine.run_group", "shard.fetch_hubs",
                  "server.fetch_hubs"}
        deadline = time.monotonic() + 5.0
        while True:
            payload = client.trace(trace_id)
            if wanted <= {span["name"] for span in payload["spans"]}:
                break
            if time.monotonic() > deadline:
                break
            time.sleep(0.01)
    spans = payload["spans"]
    assert {span["trace"] for span in spans} == {trace_id}
    names = {span["name"] for span in spans}
    assert wanted <= names
    # Both shards took a fetch, each tagged with its shard id ...
    shards_hit = {
        span["attrs"]["shard"]
        for span in spans
        if span["name"] == "shard.fetch_hubs"
    }
    assert shards_hit == {0, 1}
    # ... and the shard-side server spans ran in the shard worker
    # processes (distinct pids), stitched into the same trace.
    shard_pids = {
        span["pid"] for span in spans if span["name"] == "server.fetch_hubs"
    }
    assert len(shard_pids) == 2
    router_pids = {
        span["pid"] for span in spans if span["name"] == "server.query"
    }
    assert not (shard_pids & router_pids)
    # The client's root span lives in the client process and completes
    # the chain: every hop shares the one trace id.
    client_spans = default_tracer().spans(trace_id=trace_id)
    assert [span["name"] for span in client_spans] == ["client.request"]


def test_router_stats_aggregate_fleet_metrics(traced_router):
    router, host, port = traced_router
    with PPVClient(host, port) as client:
        client.query([QUERY_NODE], eta=2)
        payload = client.stats()
    assert "repro_queries_submitted_total" in payload["metrics"]
    fleet = payload["shards"]["metrics"]
    # Two obs-enabled shard workers contribute; fetch counters merge
    # into one fleet-wide view.
    reads = fleet["repro_hub_reads_total"]["samples"][0]["value"]
    assert reads >= 1
    assert fleet["repro_server_requests_total"]["samples"][0]["value"] >= 2
