"""Bundled accuracy evaluation: all four metrics at once.

The experiment drivers score every (query, method) pair with the same
bundle the paper's tables report — Kendall, Precision, RAG, L1 similarity —
averaged over the query workload.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.ranking import kendall_tau, precision_at_k
from repro.metrics.scores import l1_similarity, rag


@dataclass(frozen=True)
class AccuracyReport:
    """The four-metric bundle for one or more queries (averaged)."""

    kendall: float
    precision: float
    rag: float
    l1_similarity: float

    def as_dict(self) -> dict[str, float]:
        """Metric name -> value, in the paper's column order."""
        return {
            "Kendall": self.kendall,
            "Precision": self.precision,
            "RAG": self.rag,
            "L1 similarity": self.l1_similarity,
        }

    @staticmethod
    def average(reports: "list[AccuracyReport]") -> "AccuracyReport":
        """Mean of each metric over per-query reports."""
        if not reports:
            raise ValueError("cannot average zero reports")
        return AccuracyReport(
            kendall=float(np.mean([r.kendall for r in reports])),
            precision=float(np.mean([r.precision for r in reports])),
            rag=float(np.mean([r.rag for r in reports])),
            l1_similarity=float(np.mean([r.l1_similarity for r in reports])),
        )


def evaluate_accuracy(
    exact: np.ndarray, estimate: np.ndarray, k: int = 10
) -> AccuracyReport:
    """All four metrics for one query."""
    return AccuracyReport(
        kendall=kendall_tau(exact, estimate, k),
        precision=precision_at_k(exact, estimate, k),
        rag=rag(exact, estimate, k),
        l1_similarity=l1_similarity(exact, estimate),
    )
