"""Batch serving throughput: queries/sec vs batch size, batch vs scalar.

The batched engine replaces the per-hub splice loop with two sparse
matrix products and runs iteration 0 as one multi-source push, so its
advantage grows with batch size.  This bench records queries/sec for the
scalar loop (``FastPPV.query`` per query) against ``BatchFastPPV`` at
increasing batch sizes, plus the parallel offline build, and asserts the
headline acceptance: >= 3x throughput at batch size 64 at full scale.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.common import BENCH_SCALE, emit
from repro import (
    BatchFastPPV,
    FastPPV,
    StopAfterIterations,
    build_index,
    select_hubs,
    social_graph,
)
from repro.experiments.report import Table

DELTA = 1e-4
ONLINE_EPSILON = 1e-5
BATCH_SIZES = (1, 8, 16, 64)


@pytest.fixture(scope="module")
def setup():
    num_nodes = max(1200, int(10000 * BENCH_SCALE))
    num_hubs = max(120, int(1000 * BENCH_SCALE))
    graph = social_graph(num_nodes=num_nodes, seed=11)
    hubs = select_hubs(graph, num_hubs=num_hubs)
    serial_index = build_index(graph, hubs)
    parallel_index = build_index(graph, hubs, workers=4)
    rng = np.random.default_rng(0)
    queries = rng.choice(graph.num_nodes, size=max(BATCH_SIZES), replace=False)
    return graph, serial_index, parallel_index, queries


def _best_rate(run, size: int, repetitions: int = 3) -> float:
    best = float("inf")
    for _ in range(repetitions):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return size / best


def test_batch_throughput(benchmark, setup):
    graph, index, parallel_index, queries = setup
    stop = StopAfterIterations(2)
    scalar = FastPPV(graph, index, delta=DELTA, online_epsilon=ONLINE_EPSILON)
    batch = BatchFastPPV(
        graph, index, delta=DELTA, online_epsilon=ONLINE_EPSILON, cache_size=0
    )
    batch.splice  # build the matrix lowering outside the timed region

    table = Table(
        title=f"Batch throughput ({graph.num_nodes} nodes, "
        f"{index.num_hubs} hubs, eta=2, delta={DELTA})",
        headers=["batch", "scalar q/s", "batch q/s", "speedup"],
    )
    speedup_at_max = 0.0
    for size in BATCH_SIZES:
        workload = [int(q) for q in queries[:size]]
        scalar_rate = _best_rate(
            lambda: [scalar.query(q, stop=stop) for q in workload], size
        )
        batch_rate = _best_rate(
            lambda: batch.query_many(workload, stop=stop), size
        )
        speedup = batch_rate / scalar_rate
        if size == max(BATCH_SIZES):
            speedup_at_max = speedup
        table.add_row(size, f"{scalar_rate:.0f}", f"{batch_rate:.0f}",
                      f"{speedup:.2f}x")

    build_table = Table(
        title="Offline build (same hub set)",
        headers=["workers", "seconds"],
    )
    build_table.add_row(1, f"{index.stats.build_seconds:.2f}")
    build_table.add_row(4, f"{parallel_index.stats.build_seconds:.2f}")
    emit("batch_throughput", table, build_table)

    # Equivalence at the largest batch: the speed must come for free.
    workload = [int(q) for q in queries]
    batch_results = batch.query_many(workload, stop=stop)
    for query, result in zip(workload, batch_results):
        reference = scalar.query(query, stop=stop)
        np.testing.assert_allclose(result.scores, reference.scores, atol=1e-12)
        assert result.iterations == reference.iterations
        assert result.hubs_expanded == reference.hubs_expanded

    # Headline acceptance at full scale; reduced-scale smoke runs (CI)
    # only require the batch path to not be slower.
    floor = 3.0 if BENCH_SCALE >= 0.4 else 1.0
    assert speedup_at_max >= floor, (
        f"batch speedup {speedup_at_max:.2f}x below {floor}x at batch "
        f"{max(BATCH_SIZES)}"
    )

    benchmark(lambda: batch.query_many(workload, stop=stop))
