"""The coalescing micro-batch scheduler behind ``PPVService``.

Concurrent ``submit()`` calls land in one queue; a single drain thread
admits them in arrival order and serves them as **engine batches**: after
the first request of a drain arrives, the scheduler holds the batch open
for up to ``max_delay`` seconds (or until ``max_batch`` requests are
pending, or someone kicks it) so that concurrent callers coalesce into
one call per execution group.  On the disk backend that is what turns two
independent clients from residency-thrashing neighbours into one
cluster-grouped batch — each scheduling wave of
:class:`~repro.storage.disk_engine.BatchDiskFastPPV` faults a cluster in
once and drains every coalesced query that needs it.

All engine work — batch serving *and* streaming queries — runs on the
drain thread, so engines never see concurrent calls and need no locking
of their own.

The scheduler is deliberately engine-agnostic: it moves opaque jobs to an
``execute`` callback (the service's planner) and only owns admission,
batching, flushing and lifecycle.
"""

from __future__ import annotations

import threading
import time
from collections import deque

DEFAULT_MAX_BATCH = 64
"""Requests admitted into one drain (engine batches are chunked again
engine-side, so this mainly bounds how long one drain can run)."""

DEFAULT_MAX_DELAY = 0.002
"""Seconds a drain holds the batch open for concurrent arrivals."""


class CoalescingScheduler:
    """Admission queue + drain thread (see module docstring).

    Parameters
    ----------
    execute:
        ``execute(jobs)`` — serve a list of admitted jobs.  Called on the
        drain thread only.  Must not raise (the service's executor
        converts failures into per-handle errors); if it does anyway,
        the error is swallowed after marking the drain finished so the
        scheduler survives.
    max_batch:
        Maximum jobs admitted into one drain.
    max_delay:
        Coalescing window in seconds (0 disables the wait: every drain
        takes whatever is queued the moment it wakes).
    """

    def __init__(
        self,
        execute,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_delay: float = DEFAULT_MAX_DELAY,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        self._execute = execute
        self.max_batch = max_batch
        self.max_delay = max_delay
        self._cond = threading.Condition()
        self._queue: deque = deque()
        self._thread: threading.Thread | None = None
        self._closed = False
        self._kicked = False
        self._in_flight = 0
        self.batches_served = 0
        self.largest_batch = 0
        self.jobs_submitted = 0

    # ------------------------------------------------------------------ #

    def submit(self, job) -> None:
        """Enqueue one job for the next drain."""
        self.submit_many([job])

    def submit_many(self, jobs) -> None:
        """Enqueue several jobs atomically.

        All of them enter the queue under one lock acquisition, so a
        burst submitted together can never be split by a concurrent
        drain waking mid-burst — the foundation of the service's
        determinism guarantee for ``query_many``.
        """
        jobs = list(jobs)
        with self._cond:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            self._queue.extend(jobs)
            self.jobs_submitted += len(jobs)
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._drain_loop,
                    name="ppv-serving-drain",
                    daemon=True,
                )
                self._thread.start()
            self._cond.notify_all()

    def kick(self) -> None:
        """Close the current coalescing window without waiting.

        The next (or in-progress) drain pops the queue immediately
        instead of holding the batch open for ``max_delay``.
        """
        with self._cond:
            self._kicked = True
            self._cond.notify_all()

    def flush(self, timeout: float | None = None) -> None:
        """Kick and block until every queued job has been served.

        Raises
        ------
        TimeoutError
            If the queue did not empty within ``timeout`` seconds.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            self._kicked = True
            self._cond.notify_all()
            while self._queue or self._in_flight:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError("flush timed out")
                self._cond.wait(remaining)

    def close(self) -> None:
        """Serve whatever is queued, then stop the drain thread.

        Idempotent; further ``submit`` calls raise ``RuntimeError``.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
            thread = self._thread
        if thread is not None:
            thread.join()

    # ------------------------------------------------------------------ #

    def _drain_loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue:
                    return  # closed and drained
                # Coalescing window: hold the batch open for stragglers.
                if self.max_delay > 0 and not self._kicked and not self._closed:
                    deadline = time.monotonic() + self.max_delay
                    while (
                        len(self._queue) < self.max_batch
                        and not self._kicked
                        and not self._closed
                    ):
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._cond.wait(remaining)
                batch = []
                while self._queue and len(batch) < self.max_batch:
                    batch.append(self._queue.popleft())
                if not self._queue:
                    self._kicked = False
                self._in_flight += len(batch)
            try:
                self._execute(batch)
            except BaseException:  # pragma: no cover - executor guards
                pass
            finally:
                with self._cond:
                    self._in_flight -= len(batch)
                    self.batches_served += 1
                    self.largest_batch = max(self.largest_batch, len(batch))
                    self._cond.notify_all()
