"""Certified top-k: stop as soon as the answer set is provably exact.

Because FastPPV under-approximates with a known missing-mass budget
(Eq. 6), the current top-k set is provably the exact top-k once the gap
between the k-th and (k+1)-th estimates exceeds the remaining error.
This usually happens after far fewer iterations than a tight accuracy
target needs — the bound-based top-K idea of the paper's related work,
realised on scheduled approximation.

Run with:  python examples/certified_topk.py
"""

from repro import FastPPV, build_index, exact_ppv, query_top_k, select_hubs, social_graph
from repro.metrics import top_k_nodes


def main() -> None:
    graph = social_graph(num_nodes=1500, seed=12)
    hubs = select_hubs(graph, num_hubs=100)
    # clip=0 keeps the full prime PPVs: stored-entry clipping would floor
    # the reachable L1 error and block tight certificates.
    index = build_index(graph, hubs, clip=0.0)
    engine = FastPPV(graph, index, delta=0.0)  # delta=0: sound certificate

    k = 5
    print(f"{'query':>7} {'k':>3} {'iters':>6} {'L1 err at stop':>15} {'certified':>10} {'matches exact':>14}")
    for query in (100, 901, 777, 1250):
        result = query_top_k(engine, query, k=k, max_iterations=60)
        exact = exact_ppv(graph, query)
        matches = set(result.nodes.tolist()) == set(
            top_k_nodes(exact, k).tolist()
        )
        print(
            f"{query:>7} {k:>3} {result.iterations:>6} "
            f"{result.l1_error:>15.4f} {str(result.certified):>10} "
            f"{str(matches):>14}"
        )

    print(
        "\nNote the L1 error at stop: the certificate fires while the "
        "estimate is still far from converged — ranking needs far less "
        "work than scoring."
    )


if __name__ == "__main__":
    main()
