"""Offline precomputation: the PPV index of hub prime PPVs (Algorithm 1).

``build_index`` selects nothing itself — callers pass the hub set (see
:mod:`repro.core.hubs`) — it computes one prime PPV per hub and stores them
clipped (scores below ``clip`` are dropped, the paper's 1e-4 storage
optimisation) together with the border-hub arrival masses the online engine
splices.

The index is an in-memory structure; :mod:`repro.storage.ppv_store`
round-trips it to a binary on-disk format for the disk-based deployment of
Sect. 5.3.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.core.prime import DEFAULT_EPSILON, PrimePPV, prime_ppv
from repro.graph.digraph import DiGraph
from repro.graph.pagerank import DEFAULT_ALPHA

DEFAULT_CLIP = 1e-4
"""Storage clip threshold: PPV entries below this are not stored (Sect. 6)."""


@dataclass
class IndexStats:
    """Size/time accounting for the offline phase (Figs. 7, 9, 11, 15)."""

    num_hubs: int = 0
    build_seconds: float = 0.0
    stored_entries: int = 0
    stored_bytes: int = 0
    border_entries: int = 0

    @property
    def megabytes(self) -> float:
        """Stored size in MB (the unit of the paper's space plots)."""
        return self.stored_bytes / 1e6

    def merge(self, other: "IndexStats") -> None:
        """Accumulate another chunk's counters (parallel build merge).

        ``build_seconds`` is *not* summed — for a parallel build the
        meaningful figure is wall-clock time, which the caller stamps.
        """
        self.num_hubs += other.num_hubs
        self.stored_entries += other.stored_entries
        self.stored_bytes += other.stored_bytes
        self.border_entries += other.border_entries


@dataclass
class PPVIndex:
    """Precomputed prime PPVs keyed by hub node.

    Attributes
    ----------
    alpha, epsilon, clip:
        Parameters the entries were computed with; the online engine
        validates against them.
    hub_mask:
        Boolean membership array for the hub set.
    entries:
        ``hub id -> PrimePPV`` (scores already clipped).
    stats:
        Offline cost accounting.
    """

    alpha: float
    epsilon: float
    clip: float
    hub_mask: np.ndarray
    entries: dict[int, PrimePPV] = field(default_factory=dict)
    stats: IndexStats = field(default_factory=IndexStats)

    @property
    def hubs(self) -> np.ndarray:
        """Sorted hub ids."""
        return np.nonzero(self.hub_mask)[0].astype(np.int64)

    @property
    def num_hubs(self) -> int:
        """Number of hubs."""
        return len(self.entries)

    def __contains__(self, hub: int) -> bool:
        return int(hub) in self.entries

    def get(self, hub: int) -> PrimePPV:
        """Prime PPV of ``hub``.

        Raises
        ------
        KeyError
            If ``hub`` was not indexed.
        """
        return self.entries[int(hub)]

    def is_hub(self, node: int) -> bool:
        """Whether ``node`` belongs to the hub set."""
        return bool(self.hub_mask[node])


def clip_prime_ppv(entry: PrimePPV, clip: float) -> PrimePPV:
    """Drop score entries below ``clip``.

    Border arrival masses are never clipped — they are the splice points of
    Theorem 4 and the online ``delta`` threshold already regulates them.
    """
    if clip <= 0.0:
        return entry
    keep = entry.scores >= clip
    if keep.all():
        return entry
    return PrimePPV(
        source=entry.source,
        nodes=entry.nodes[keep],
        scores=entry.scores[keep],
        border_hubs=entry.border_hubs,
        border_masses=entry.border_masses,
        edges_touched=entry.edges_touched,
    )


def _build_chunk(
    graph: DiGraph,
    chunk: np.ndarray,
    hub_mask: np.ndarray,
    alpha: float,
    epsilon: float,
    clip: float,
) -> tuple[dict[int, PrimePPV], IndexStats]:
    """Compute one chunk of hub entries with its own stats (no timing)."""
    entries: dict[int, PrimePPV] = {}
    stats = IndexStats(num_hubs=int(chunk.size))
    for hub in chunk:
        entry = clip_prime_ppv(
            prime_ppv(graph, int(hub), hub_mask, alpha=alpha, epsilon=epsilon),
            clip,
        )
        entries[int(hub)] = entry
        stats.stored_entries += entry.nodes.size
        stats.border_entries += entry.border_hubs.size
        stats.stored_bytes += entry.nbytes
    return entries, stats


# Per-process state of the "process" executor: the graph and shared
# build parameters travel once per worker (pool initializer) instead of
# once per chunk — on a large graph the pickle, not the push, would
# otherwise dominate.
_PROCESS_BUILD_STATE: tuple | None = None


def _init_build_worker(graph, hub_mask, alpha, epsilon, clip) -> None:
    global _PROCESS_BUILD_STATE
    _PROCESS_BUILD_STATE = (graph, hub_mask, alpha, epsilon, clip)


def _build_chunk_in_worker(chunk: np.ndarray):
    graph, hub_mask, alpha, epsilon, clip = _PROCESS_BUILD_STATE
    return _build_chunk(graph, chunk, hub_mask, alpha, epsilon, clip)


def build_index(
    graph: DiGraph,
    hubs: np.ndarray | list[int],
    alpha: float = DEFAULT_ALPHA,
    epsilon: float = DEFAULT_EPSILON,
    clip: float = DEFAULT_CLIP,
    workers: int = 1,
    executor: str = "thread",
) -> PPVIndex:
    """Offline precomputation (Algorithm 1).

    Computes the prime PPV of every hub over its prime subgraph and stores
    it clipped.  Total work is ``O(I * (|V| + |E|))`` independent of the
    number of hubs (Sect. 5.1): more hubs mean smaller prime subgraphs.

    Parameters
    ----------
    graph:
        The graph.
    hubs:
        Hub node ids (see :func:`repro.core.hubs.select_hubs`).
    alpha, epsilon:
        Push parameters (see :func:`repro.core.prime.prime_ppv`).
    clip:
        Storage clip threshold.
    workers:
        Number of ``concurrent.futures`` workers the hub set is chunked
        across.  Each hub's push is independent, so the resulting index is
        entry-wise identical for any worker count; per-chunk
        :class:`IndexStats` are merged and ``build_seconds`` records
        wall-clock time.
    executor:
        ``"thread"`` (the default) shares the graph zero-copy but is
        GIL-bound on small prime subgraphs; ``"process"`` runs chunks in
        a ``ProcessPoolExecutor`` so the build scales past the GIL at
        the cost of pickling the graph to each worker.  Entry-wise
        identical either way.
    """
    hubs = np.asarray(hubs, dtype=np.int64)
    if clip >= alpha:
        # The self-entry of a hub's prime PPV is exactly alpha (trivial
        # tour) plus cycle mass; clipping it away would break the online
        # trivial-tour correction.
        raise ValueError(f"clip ({clip}) must be below alpha ({alpha})")
    if workers < 1:
        raise ValueError("workers must be at least 1")
    if executor not in ("thread", "process"):
        raise ValueError(
            f"executor must be 'thread' or 'process', not {executor!r}"
        )
    if hubs.size != np.unique(hubs).size:
        raise ValueError("hub ids must be unique")
    if hubs.size and (hubs.min() < 0 or hubs.max() >= graph.num_nodes):
        raise ValueError("hub id out of range")
    hub_mask = np.zeros(graph.num_nodes, dtype=bool)
    hub_mask[hubs] = True

    index = PPVIndex(alpha=alpha, epsilon=epsilon, clip=clip, hub_mask=hub_mask)
    started = time.perf_counter()
    if workers == 1 or hubs.size <= 1:
        chunk_results = [
            _build_chunk(graph, hubs, hub_mask, alpha, epsilon, clip)
        ]
    else:
        # Oversplit so a chunk of unusually large prime subgraphs cannot
        # straggle the whole build.
        chunks = np.array_split(hubs, min(hubs.size, workers * 4))
        if executor == "process":
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_build_worker,
                initargs=(graph, hub_mask, alpha, epsilon, clip),
            ) as pool:
                chunk_results = list(
                    pool.map(_build_chunk_in_worker, chunks)
                )
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                chunk_results = list(
                    pool.map(
                        lambda chunk: _build_chunk(
                            graph, chunk, hub_mask, alpha, epsilon, clip
                        ),
                        chunks,
                    )
                )
    for entries, stats in chunk_results:
        index.entries.update(entries)
        index.stats.merge(stats)
    index.stats.build_seconds = time.perf_counter() - started
    return index
