"""Hub-count auto-configuration (paper's future work #1).

"Automatically determine the optimal number of hubs by correlating with
various graph properties like density and diameter." (Sect. 7.)  We
realise it as a measured probe rather than a closed-form guess: build
candidate indexes along a geometric ladder of hub counts, measure the
mean *online work* (the scale-independent cost of Sect. 5.2:
iteration-0 push edges plus spliced index entries) on a small query
sample, and return the candidate minimising it subject to an optional
offline space budget.

The Sect. 5.1 cost model predicts the trade-off the probe measures:
iteration-0 work shrinks like ``(|V| + |E|) / |H|`` while splice work
grows with the border-hub fan-out, so the work curve is U-shaped (or
saturating) in ``|H|`` and a coarse ladder finds its knee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.hubs import HubPolicy, select_hubs
from repro.core.index import build_index
from repro.core.query import FastPPV, StopAfterIterations
from repro.graph.digraph import DiGraph
from repro.graph.pagerank import DEFAULT_ALPHA, global_pagerank


@dataclass(frozen=True)
class ProbePoint:
    """Measured cost at one candidate hub count."""

    num_hubs: int
    mean_work: float
    mean_l1_error: float
    index_megabytes: float


@dataclass(frozen=True)
class AutotuneResult:
    """Outcome of :func:`autotune_hub_count`."""

    best_num_hubs: int
    probes: tuple[ProbePoint, ...]


def default_candidates(graph: DiGraph) -> list[int]:
    """A geometric ladder between 0.5% and 25% of the node count."""
    n = graph.num_nodes
    ladder = []
    value = max(1, n // 200)
    while value <= max(1, n // 4):
        ladder.append(value)
        value *= 2
    return ladder or [max(1, n // 4)]


def autotune_hub_count(
    graph: DiGraph,
    candidates: Sequence[int] | None = None,
    num_probe_queries: int = 15,
    eta: int = 2,
    alpha: float = DEFAULT_ALPHA,
    space_budget_mb: float | None = None,
    seed: int = 0,
) -> AutotuneResult:
    """Pick a hub count by probing candidate indexes.

    Parameters
    ----------
    graph:
        The graph to configure for.
    candidates:
        Hub counts to probe; defaults to :func:`default_candidates`.
    num_probe_queries:
        Uniformly sampled queries scored per candidate.
    eta:
        Iteration budget used during probing.
    alpha:
        Teleport probability.
    space_budget_mb:
        If given, candidates whose index exceeds the budget are excluded
        (unless all do, in which case the smallest index wins).
    seed:
        Sampling seed.
    """
    if candidates is None:
        candidates = default_candidates(graph)
    if not candidates:
        raise ValueError("need at least one candidate hub count")
    rng = np.random.default_rng(seed)
    queries = rng.choice(
        graph.num_nodes, size=min(num_probe_queries, graph.num_nodes), replace=False
    )
    pagerank = global_pagerank(graph, alpha=alpha)

    probes = []
    for num_hubs in candidates:
        hubs = select_hubs(
            graph, num_hubs, HubPolicy.EXPECTED_UTILITY, alpha=alpha, pagerank=pagerank
        )
        index = build_index(graph, hubs, alpha=alpha)
        engine = FastPPV(graph, index, online_epsilon=1e-6)
        works = []
        errors = []
        for query in queries:
            result = engine.query(int(query), stop=StopAfterIterations(eta))
            works.append(result.work_units)
            errors.append(result.l1_error)
        probes.append(
            ProbePoint(
                num_hubs=num_hubs,
                mean_work=float(np.mean(works)),
                mean_l1_error=float(np.mean(errors)),
                index_megabytes=index.stats.megabytes,
            )
        )

    eligible = probes
    if space_budget_mb is not None:
        within = [p for p in probes if p.index_megabytes <= space_budget_mb]
        eligible = within or [min(probes, key=lambda p: p.index_megabytes)]
    best = min(eligible, key=lambda p: p.mean_work)
    return AutotuneResult(best_num_hubs=best.num_hubs, probes=tuple(probes))
