"""Dynamic graphs: incremental index maintenance (paper's future work #2).

"As a graph can evolve over time, a simple idea to process graph updates
is to only re-compute the affected prime PPVs, without touching the
unaffected ones." (Sect. 7.)  This module realises that idea:

* :func:`add_edges` / :func:`remove_edges` produce an updated
  (still immutable) graph;
* :func:`update_index` diffs old vs new adjacency, finds the hubs whose
  prime subgraphs are *affected*, and recomputes only those entries.

A hub ``h`` is affected by a change to node ``u``'s out-edges iff ``u``
was an **interior** node of ``G'(h)`` — i.e. ``u`` appears in the prime
PPV's support and is either a non-hub or ``h`` itself (border hubs are
never expanded, so their out-edges never influence the entry).  This test
is exact up to the epsilon truncation: a node that was cut off by epsilon
could in principle become relevant after an update that *raises* mass
towards it, but any such contribution is below the same epsilon the
offline phase already discards.  Tests verify equivalence with a full
rebuild on random update batches.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.index import PPVIndex, build_index, clip_prime_ppv
from repro.core.prime import prime_ppv
from repro.graph.build import GraphBuilder
from repro.graph.digraph import DiGraph

Edge = tuple[int, int]


def _copy_into(builder: GraphBuilder, graph: DiGraph, drop: set[Edge]) -> None:
    """Re-add all of ``graph``'s edges (with weights) except ``drop``."""
    weights = graph.weights
    for src in range(graph.num_nodes):
        start, end = graph.indptr[src], graph.indptr[src + 1]
        for position in range(start, end):
            dst = int(graph.indices[position])
            if (src, dst) in drop:
                continue
            weight = float(weights[position]) if weights is not None else None
            builder.add_edge(src, dst, weight)


def add_edges(
    graph: DiGraph, edges: Iterable[Edge], weight: float | None = None
) -> DiGraph:
    """A new graph with ``edges`` added (duplicates are no-ops on
    unweighted graphs; on weighted graphs weights merge additively)."""
    builder = GraphBuilder(num_nodes=graph.num_nodes)
    _copy_into(builder, graph, drop=set())
    for src, dst in edges:
        builder.add_edge(src, dst, weight)
    return builder.build()


def remove_edges(graph: DiGraph, edges: Iterable[Edge]) -> DiGraph:
    """A new graph with ``edges`` removed (missing edges are no-ops)."""
    drop = {(int(s), int(d)) for s, d in edges}
    builder = GraphBuilder(num_nodes=graph.num_nodes)
    _copy_into(builder, graph, drop=drop)
    return builder.build()


def changed_sources(old: DiGraph, new: DiGraph) -> np.ndarray:
    """Nodes whose out-adjacency (or out-weights) differs between the two
    graphs."""
    if old.num_nodes != new.num_nodes:
        raise ValueError("graphs must have the same node set")
    changed = []
    for node in range(old.num_nodes):
        if not np.array_equal(old.out_neighbors(node), new.out_neighbors(node)):
            changed.append(node)
            continue
        if old.weights is not None or new.weights is not None:
            old_slice = (
                old.weights[old.indptr[node] : old.indptr[node + 1]]
                if old.weights is not None
                else np.ones(old.out_degree(node))
            )
            new_slice = (
                new.weights[new.indptr[node] : new.indptr[node + 1]]
                if new.weights is not None
                else np.ones(new.out_degree(node))
            )
            if not np.array_equal(old_slice, new_slice):
                changed.append(node)
    return np.asarray(changed, dtype=np.int64)


def affected_hubs(index: PPVIndex, sources: np.ndarray) -> np.ndarray:
    """Hubs whose prime subgraph contains a changed node as an interior.

    See the module docstring for the interior test.
    """
    source_set = set(int(s) for s in sources)
    hub_mask = index.hub_mask
    affected = []
    for hub, entry in index.entries.items():
        for node in entry.nodes:
            node = int(node)
            if node in source_set and (not hub_mask[node] or node == hub):
                affected.append(hub)
                break
    return np.asarray(sorted(affected), dtype=np.int64)


def update_index(
    old_graph: DiGraph, new_graph: DiGraph, index: PPVIndex
) -> tuple[PPVIndex, int]:
    """Incrementally refresh ``index`` after a graph update.

    Returns
    -------
    (new_index, recomputed):
        The refreshed index (hub set unchanged) and how many prime PPVs
        were actually recomputed.

    Notes
    -----
    The hub *set* is kept: expected-utility scores drift slowly and the
    paper's proposal keeps hubs fixed across updates.  Callers that want
    to re-select hubs should rebuild via
    :func:`repro.core.index.build_index`.
    """
    sources = changed_sources(old_graph, new_graph)
    stale = affected_hubs(index, sources)
    stale_set = set(int(h) for h in stale)

    refreshed = PPVIndex(
        alpha=index.alpha,
        epsilon=index.epsilon,
        clip=index.clip,
        hub_mask=index.hub_mask.copy(),
    )
    refreshed.stats.num_hubs = index.stats.num_hubs
    for hub, entry in index.entries.items():
        if hub in stale_set:
            entry = clip_prime_ppv(
                prime_ppv(
                    new_graph,
                    hub,
                    index.hub_mask,
                    alpha=index.alpha,
                    epsilon=index.epsilon,
                ),
                index.clip,
            )
        refreshed.entries[hub] = entry
        refreshed.stats.stored_entries += entry.nodes.size
        refreshed.stats.border_entries += entry.border_hubs.size
        refreshed.stats.stored_bytes += entry.nbytes
    return refreshed, stale.size


def rebuild_index(new_graph: DiGraph, index: PPVIndex) -> PPVIndex:
    """Full rebuild with the same hub set and parameters (the baseline
    the incremental path is tested against)."""
    return build_index(
        new_graph,
        index.hubs,
        alpha=index.alpha,
        epsilon=index.epsilon,
        clip=index.clip,
    )
