"""Serving workloads through the ``PPVService`` façade.

Simulates a multi-user serving scenario: the offline index is built with
parallel workers, then a single :class:`~repro.serving.PPVService` fronts
all traffic — concurrent clients ``submit()`` requests that the
coalescing scheduler drains as sparse-matrix engine batches, repeated
queries hit the popularity-aware result cache, and the scores stay
bitwise-equal to calling the batch engine directly.

Run with:  python examples/batch_serving.py
"""

import threading
import time

import numpy as np

from repro import (
    BatchFastPPV,
    FastPPV,
    PPVService,
    QuerySpec,
    StopAfterIterations,
    build_index,
    select_hubs,
    social_graph,
)


def main() -> None:
    # 1. A graph and a parallel offline build (chunked across workers).
    graph = social_graph(num_nodes=4000, seed=42)
    hubs = select_hubs(graph, num_hubs=400)
    index = build_index(graph, hubs, workers=4)
    print(f"graph: {graph}")
    print(
        f"index: {index.num_hubs} hubs built with 4 workers "
        f"in {index.stats.build_seconds:.2f}s"
    )

    rng = np.random.default_rng(7)
    batch = rng.choice(graph.num_nodes, size=64, replace=False).tolist()
    stop = StopAfterIterations(2)
    specs = [QuerySpec(q, stop=stop) for q in batch]

    with PPVService.open(
        index, graph=graph, delta=1e-4, online_epsilon=1e-5
    ) as service:
        service.warm()  # build the matrix lowering outside timed regions

        # 2. One burst through the facade: the scheduler drains it as
        #    engine batches (iteration 0 = one multi-source push, every
        #    further iteration = two sparse matrix products).
        started = time.perf_counter()
        results = service.query_many(specs)
        batch_seconds = time.perf_counter() - started
        print(
            f"\nburst of {len(batch)}: {batch_seconds * 1000:.0f} ms "
            f"({len(batch) / batch_seconds:.0f} queries/s), "
            f"mean L1 error {np.mean([r.l1_error for r in results]):.4f}"
        )

        # 3. The same traffic, one query at a time (the scalar engine).
        scalar = FastPPV(graph, index, delta=1e-4, online_epsilon=1e-5)
        started = time.perf_counter()
        scalar_results = [scalar.query(q, stop=stop) for q in batch]
        scalar_seconds = time.perf_counter() - started
        print(
            f"scalar loop: {scalar_seconds * 1000:.0f} ms "
            f"({len(batch) / scalar_seconds:.0f} queries/s) "
            f"-> facade speedup {scalar_seconds / batch_seconds:.1f}x"
        )
        worst = max(
            float(np.abs(b.scores - s.scores).max())
            for b, s in zip(results, scalar_results)
        )
        print(f"largest score deviation from the scalar engine: {worst:.2e}")

        # ... and the facade adds no numerics of its own: a direct call
        # into the batch engine gives bitwise-identical scores.
        direct = BatchFastPPV(
            graph, index, delta=1e-4, online_epsilon=1e-5, cache_size=0
        ).query_many(batch, stop=stop)
        bitwise = all(
            np.array_equal(a.scores, b.scores)
            for a, b in zip(results, direct)
        )
        print(f"bitwise-equal to BatchFastPPV.query_many: {bitwise}")

        # 4. Two concurrent clients asking for *fresh* nodes (nothing
        #    cached yet): their submissions coalesce into shared
        #    scheduler drains — and shared engine batches — instead of
        #    interleaving engine calls.
        fresh = [
            int(q)
            for q in rng.choice(graph.num_nodes, size=64, replace=False)
            if q not in set(batch)
        ]

        def client(nodes, sink):
            handles = [service.submit(QuerySpec(q, stop=stop)) for q in nodes]
            sink.extend(h.result() for h in handles)

        before = service.stats()
        a_results: list = []
        b_results: list = []
        half = len(fresh) // 2
        threads = [
            threading.Thread(target=client, args=(fresh[:half], a_results)),
            threading.Thread(target=client, args=(fresh[half:], b_results)),
        ]
        started = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        seconds = time.perf_counter() - started
        stats = service.stats()
        print(
            f"\ntwo concurrent clients, {half} fresh queries each: "
            f"{seconds * 1000:.0f} ms in {stats.batches - before.batches} "
            f"coalesced batches "
            f"({stats.cache_misses - before.cache_misses} engine-served)"
        )

        # 5. Repeated traffic: completed PPVs come from the popularity-
        #    aware cache (hit counters feed eviction, so the popular
        #    working set survives one-off bursts).
        before = service.stats()
        started = time.perf_counter()
        service.query_many(specs)
        cached_seconds = time.perf_counter() - started
        stats = service.stats()
        print(
            f"\nfirst burst again: {cached_seconds * 1000:.1f} ms "
            f"({stats.cache_hits - before.cache_hits} cache hits / "
            f"{stats.cache_misses - before.cache_misses} misses)"
        )


if __name__ == "__main__":
    main()
