"""Streaming delivery: consume partial PPVs as they certify.

The engines are *anytime* algorithms — every iteration only adds
probability mass, and the running L1 error (Eq. 6) is known exactly.
``PPVService.stream`` exposes that: it yields a
:class:`~repro.serving.QuerySnapshot` per iteration (scores copy, L1
error, live top-k certificate status), so a client can render partial
results immediately and stop consuming the moment its accuracy target —
or its certificate — is reached.  Closing the iterator early cancels
the query at the next iteration boundary instead of computing thrown-
away iterations.

Run with:  python examples/streaming_serving.py
"""

import numpy as np

from repro import (
    PPVService,
    QuerySpec,
    StopAtL1Error,
    build_index,
    select_hubs,
    social_graph,
)


def main() -> None:
    graph = social_graph(num_nodes=2000, seed=9)
    hubs = select_hubs(graph, num_hubs=200)
    # clip=0 so certificates are reachable (see repro.core.topk).
    index = build_index(graph, hubs, clip=0.0, epsilon=1e-6)

    rng = np.random.default_rng(1)
    query = int(rng.choice(graph.num_nodes))

    with PPVService.open(index, graph=graph, delta=0.0) as service:
        # 1. Watch a certified top-5 converge frame by frame.
        print(f"streaming certified top-5 of node {query}:")
        print(f"{'iter':>5} {'L1 error':>10} {'frontier':>9} "
              f"{'certified':>10}  top-5 so far")
        for snapshot in service.stream(QuerySpec(query, top_k=5)):
            top = ", ".join(str(int(n)) for n in snapshot.top_k(5))
            print(
                f"{snapshot.iteration:>5} {snapshot.l1_error:>10.4f} "
                f"{snapshot.frontier_size:>9} "
                f"{str(snapshot.certified):>10}  [{top}]"
            )
            if snapshot.certified:
                print("certificate fired — stop consuming, answer is exact")
                break

        # 2. An accuracy-aware client: take frames until the error is
        #    good enough for a UI preview, then abandon the stream (the
        #    service cancels the rest of the query).
        target = 0.05
        frames = 0
        for snapshot in service.stream(
            QuerySpec(query, stop=StopAtL1Error(0.001))
        ):
            frames += 1
            if snapshot.l1_error <= target:
                print(
                    f"\npreview-quality estimate (L1 <= {target}) after "
                    f"{frames} frames; abandoning the rest of the query"
                )
                break


if __name__ == "__main__":
    main()
