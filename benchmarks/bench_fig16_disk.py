"""Fig. 16: disk-based online query processing — cluster-count sweep."""

import numpy as np
import pytest

from benchmarks.common import BENCH_SCALE, emit
from repro import build_index, select_hubs
from repro.experiments import livejournal_graph
from repro.experiments.fig16_disk import (
    budget_table,
    fig16_table,
    run_budget_sweep,
    run_disk_sweep,
)
from repro.storage.clustering import cluster_graph


@pytest.fixture(scope="module")
def disk_sweep(tmp_path_factory):
    graph = livejournal_graph(scale=BENCH_SCALE)
    hubs = select_hubs(graph, max(40, int(300 * BENCH_SCALE)))
    index = build_index(graph, hubs)
    rng = np.random.default_rng(0)
    queries = rng.choice(graph.num_nodes, size=15, replace=False).tolist()
    points = run_disk_sweep(
        graph,
        index,
        cluster_counts=(10, 15, 25, 35, 50),
        queries=queries,
        workdir=str(tmp_path_factory.mktemp("fig16")),
    )
    budget_points = run_budget_sweep(
        graph,
        index,
        num_clusters=25,
        budgets=(1, 2, 4, 8),
        queries=queries,
        workdir=str(tmp_path_factory.mktemp("fig16_budget")),
    )
    return graph, points, budget_points


def test_fig16_disk(benchmark, disk_sweep):
    graph, points, budget_points = disk_sweep
    emit(
        "fig16_disk",
        fig16_table(points, "LiveJournal"),
        budget_table(budget_points, "LiveJournal"),
    )

    # Ablation shape: more resident clusters never increases faults.
    budget_faults = [p.faults_per_query for p in budget_points]
    assert all(b <= a + 1e-9 for a, b in zip(budget_faults, budget_faults[1:]))

    # Shape assertions (Sect. 6.4.2): faults grow with cluster count,
    # memory need shrinks, query time stays within a stable band.
    faults = [p.faults_per_query for p in points]
    assert faults == sorted(faults)
    memory = [p.memory_need for p in points]
    assert memory[-1] < memory[0]
    times = [p.ms_per_query for p in points]
    assert max(times) <= min(times) * 4.0

    # Timing record: clustering the graph into 25 parts.
    benchmark(lambda: cluster_graph(graph, 25, seed=1))
