"""Shared fixtures: the paper's running-example graph and workload graphs.

Hypothesis profiles
-------------------
``dev`` (default): a handful of examples per property so the tier-1 run
stays fast.  ``ci``: 200 derandomized examples with the failing seed
blob printed — the profile the dedicated property-test CI job pins with
``--hypothesis-profile=ci``.  Tests that set their own ``@settings``
override the profile, so legacy suites keep their tuned budgets.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings

from repro import build_index, from_edges, select_hubs, social_graph
from repro.graph.generators import bibliographic_graph

settings.register_profile(
    "dev",
    max_examples=15,
    deadline=None,
    stateful_step_count=6,
)
settings.register_profile(
    "ci",
    max_examples=200,
    deadline=None,
    stateful_step_count=8,
    derandomize=True,
    print_blob=True,
)
settings.load_profile("dev")

# Node naming for the paper's Fig. 1 example graph.
A, B, C, D, E, F, G, H = range(8)

FIG1_EDGES = [
    (A, B), (A, C), (A, D), (A, F), (A, H),
    (B, C), (B, D), (B, E),
    (D, C), (D, E),
    (F, D), (F, G),
    (G, D),
    (H, C),
]

FIG3_HUBS = [B, D, F]  # the hub set {b, d, f} of Fig. 3

ALPHA = 0.15


@pytest.fixture(scope="session")
def fig1_graph():
    """The running example of Fig. 1(a) (reconstructed from the tour lists)."""
    return from_edges(FIG1_EDGES, num_nodes=8)


@pytest.fixture(scope="session")
def fig1_hub_mask(fig1_graph):
    mask = np.zeros(fig1_graph.num_nodes, dtype=bool)
    mask[FIG3_HUBS] = True
    return mask


@pytest.fixture(scope="session")
def cyclic_graph():
    """A small strongly cyclic graph (every node has out-edges)."""
    return from_edges(
        [(0, 1), (1, 2), (2, 0), (1, 0), (2, 3), (3, 2), (3, 0), (0, 3)],
        num_nodes=4,
    )


@pytest.fixture(scope="session")
def small_social():
    """A 400-node LiveJournal-like graph (session-cached: generation is slow)."""
    return social_graph(num_nodes=400, edges_per_node=3, seed=5)


@pytest.fixture(scope="session")
def small_bib():
    """A small DBLP-like bibliographic network."""
    return bibliographic_graph(
        num_authors=120, num_papers=260, num_venues=12, seed=3
    )


@pytest.fixture(scope="session")
def small_social_index(small_social):
    """A default index over the small social graph (40 hubs)."""
    hubs = select_hubs(small_social, num_hubs=40)
    return build_index(small_social, hubs)
