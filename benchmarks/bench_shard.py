"""Sharded serving: router throughput and exactness at 1/2/3 shards.

One social graph, one index, one cluster assignment — partitioned at
one, two and three shards and served through :class:`ShardRouter`
(shard pools + router front-end, all on this host), driven by
concurrent pipelining TCP clients.  The baseline is the unsharded disk
deployment of the same index over the same assignment, queried
in-process one request at a time.

What the table records, honestly: the router rows carry a coalescing +
pipelining advantage over the one-at-a-time baseline (same effect the
server bench measures), while the shard-count sweep isolates the
**price of distribution** — on a single host every extra shard adds
network fan-out (hub prime-PPVs and cluster adjacency fetched from
shard processes) on top of the very disk reads the baseline does
locally, so throughput *declines* as shards increase.  The subsystem's
win is capacity (each shard holds 1/N of the index), and it must not
cost correctness.  Accordingly the acceptance assertions are exactness
and structure, not a speedup floor:

* a sampled workload (plain eta-2 queries and certified top-k) served
  through every shard count is **bitwise equal** to the unsharded disk
  deployment;
* every router reports coherent aggregated stats (``num_shards``
  matches, merged latency histogram counts add up, ``fetch_balance``
  >= 1.0).

Emits ``BENCH_shard.json`` (merged, scale-stamped) via
``benchmarks.common.emit_json``.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from benchmarks.common import BENCH_SCALE, emit, emit_json
from repro import StopAfterIterations, build_index, select_hubs, social_graph
from repro.experiments.report import Table
from repro.server import PPVClient, protocol
from repro.serving import PPVService, QuerySpec
from repro.sharding import ShardRouter, partition_index
from repro.storage import DiskGraphStore, cluster_graph, save_index

DELTA = 0.0
"""Exact mode on both sides: the bitwise-equality bar needs identical
kernels, and the router's claim is exactness."""
ETA = 2
CLIENTS = 4
PIPELINE_WINDOW = 8
SHARD_COUNTS = (1, 2, 3)
TOPK_SAMPLE = 2
"""How many of the sampled equivalence queries run as certified top-k."""


@pytest.fixture(scope="module")
def setup(tmp_path_factory):
    num_nodes = max(600, int(3000 * BENCH_SCALE))
    num_hubs = max(60, int(300 * BENCH_SCALE))
    graph = social_graph(num_nodes=num_nodes, seed=13)
    hubs = select_hubs(graph, num_hubs=num_hubs)
    # clip=0 so certified top-k can fire in the equivalence sample.
    index = build_index(graph, hubs, clip=0.0, epsilon=1e-6)
    assignment = cluster_graph(graph, 12, seed=1)
    root = tmp_path_factory.mktemp("bench_shard")
    index_path = root / "index.fppv"
    save_index(index, index_path)
    store_dir = root / "clusters"
    DiskGraphStore(graph, assignment, store_dir)
    parts = {}
    for num_shards in SHARD_COUNTS:
        part_root = root / f"part{num_shards}"
        partition_index(
            graph, index, num_shards, part_root, assignment=assignment
        )
        parts[num_shards] = part_root
    rng = np.random.default_rng(7)
    # Two disjoint unique-node sets: every configuration runs twice
    # (best-of, against shared-host scheduler noise) with no repeats
    # for a cache to flatter.
    num_queries = min(num_nodes // 2, max(40, int(320 * BENCH_SCALE)))
    pool = rng.choice(graph.num_nodes, size=2 * num_queries, replace=False)
    query_sets = [
        [int(q) for q in pool[:num_queries]],
        [int(q) for q in pool[num_queries:]],
    ]
    return graph, index, index_path, store_dir, parts, query_sets


def _sample_specs(queries):
    """The equivalence sample: plain eta queries plus certified top-k."""
    stop = StopAfterIterations(ETA)
    plain = queries[: 8 - TOPK_SAMPLE]
    topk = queries[8 - TOPK_SAMPLE : 8]
    specs = [QuerySpec(node, stop=stop) for node in plain]
    specs += [QuerySpec(node, top_k=5) for node in topk]
    return specs


def _reference_payloads(index_path, store_dir, queries, top):
    """The unsharded disk deployment's rendered payloads (bitwise bar)."""
    graph_store = DiskGraphStore.open(store_dir)
    with PPVService.open(
        str(index_path), backend="disk", graph_store=graph_store,
        delta=DELTA, cache_size=0,
    ) as service:
        specs = _sample_specs(queries)
        results = service.query_many(specs)
        return [
            protocol.render_result(spec, result, top=top)
            for spec, result in zip(specs, results)
        ]


def _client_payloads(address, queries, top):
    """The same sample through one router client, as wire payloads."""
    payloads = []
    with PPVClient(*address, timeout=60) as client:
        for spec in _sample_specs(queries):
            if spec.top_k is not None:
                payloads.append(
                    client.query(
                        spec.nodes[0], top_k=spec.top_k,
                        budget=spec.top_k_budget, top=top,
                    )
                )
            else:
                payloads.append(
                    client.query(spec.nodes[0], eta=ETA, top=top)
                )
    return payloads


def _sequential_qps(index_path, store_dir, query_sets) -> float:
    """Unsharded disk deployment, one request in flight at a time."""
    best = 0.0
    graph_store = DiskGraphStore.open(store_dir)
    with PPVService.open(
        str(index_path), backend="disk", graph_store=graph_store,
        delta=DELTA, cache_size=0,
    ) as service:
        stop = StopAfterIterations(ETA)
        for queries in query_sets:
            started = time.perf_counter()
            for node in queries:
                service.query(QuerySpec(node, stop=stop))
            elapsed = time.perf_counter() - started
            best = max(best, len(queries) / elapsed)
    return best


def _drive_clients(address, queries, clients: int) -> float:
    """Split ``queries`` across ``clients`` concurrent connections;
    returns queries/sec over the slowest-client wall-clock."""
    shares = [queries[k::clients] for k in range(clients)]
    errors: list[BaseException] = []
    barrier = threading.Barrier(clients + 1)

    def client_main(share) -> None:
        try:
            with PPVClient(*address, timeout=120) as client:
                barrier.wait(timeout=30)
                client.query_many(
                    share, window=PIPELINE_WINDOW, eta=ETA, top=5
                )
        except BaseException as error:  # pragma: no cover - diagnostics
            errors.append(error)

    threads = [
        threading.Thread(target=client_main, args=(share,))
        for share in shares
    ]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=30)
    started = time.perf_counter()
    for thread in threads:
        thread.join(timeout=600)
    elapsed = time.perf_counter() - started
    assert not errors, errors
    return len(queries) / elapsed


def test_shard_throughput(setup):
    graph, index, index_path, store_dir, parts, query_sets = setup
    expected = _reference_payloads(
        index_path, store_dir, query_sets[0], top=20
    )

    sequential = _sequential_qps(index_path, store_dir, query_sets)
    rows = [("unsharded disk, in-process", 0, sequential, 1.0, "-")]
    qps_by_shards: dict[str, float] = {}
    balance_by_shards: dict[str, float] = {}
    for num_shards in SHARD_COUNTS:
        with ShardRouter(
            parts[num_shards], delta=DELTA, cache_size=0
        ) as address:
            # Exactness first: the sampled workload through this fleet
            # must be bitwise equal to the unsharded deployment (JSON
            # round-trips floats exactly, so dict equality is bitwise).
            got = _client_payloads(address, query_sets[0], top=20)
            assert got == expected, f"{num_shards}-shard results diverge"
            qps = max(
                _drive_clients(address, queries, CLIENTS)
                for queries in query_sets
            )
            with PPVClient(*address, timeout=60) as client:
                shards = client.stats()["shards"]
        assert shards["num_shards"] == num_shards
        assert len(shards["per_shard"]) == num_shards
        assert shards["latency"]["count"] == sum(
            entry["latency"]["count"] for entry in shards["per_shard"]
        )
        balance = shards["fetch_balance"]
        assert balance >= 1.0
        qps_by_shards[str(num_shards)] = qps
        balance_by_shards[str(num_shards)] = balance
        rows.append(
            (
                f"router, {num_shards} shard(s), {CLIENTS} clients",
                num_shards, qps, qps / sequential, f"{balance:.2f}",
            )
        )

    certified = [p for p in expected if "certified" in p]
    assert len(certified) == TOPK_SAMPLE

    table = Table(
        title=(
            f"Sharded serving ({graph.num_nodes} nodes, "
            f"{index.num_hubs} hubs, eta={ETA}, "
            f"{len(query_sets[0])} unique queries/pass)"
        ),
        headers=["configuration", "shards", "queries/s", "vs unsharded",
                 "fetch balance"],
        rows=[
            [name, shards or "-", f"{qps:.0f}", f"{speedup:.2f}x", balance]
            for name, shards, qps, speedup, balance in rows
        ],
    )
    emit("bench_shard", table)
    emit_json(
        "shard",
        {
            "shard": {
                "num_queries": len(query_sets[0]),
                "eta": ETA,
                "clients": CLIENTS,
                "pipeline_window": PIPELINE_WINDOW,
                "unsharded_sequential_qps": sequential,
                "router_qps_by_shards": qps_by_shards,
                "fetch_balance_by_shards": balance_by_shards,
                "sampled_workload_bitwise_equal": True,
                "certified_topk_in_sample": len(certified),
            }
        },
    )
