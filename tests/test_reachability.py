"""Unit tests for the tour model — including the paper's Fig. 1(b) values."""

import numpy as np
import pytest

from repro.core.exact import exact_ppv
from repro.core.reachability import (
    brute_force_increment,
    brute_force_ppv,
    enumerate_tours,
    hub_length,
    tour_reachability,
)
from tests.conftest import A, ALPHA, B, C, D, E, F, FIG3_HUBS, G, H


class TestTourReachability:
    def test_trivial_tour_is_alpha(self, fig1_graph):
        assert tour_reachability(fig1_graph, (A,), ALPHA) == pytest.approx(ALPHA)

    def test_fig1_t1(self, fig1_graph):
        # t1: a -> c, paper: 0.0255
        value = tour_reachability(fig1_graph, (A, C), ALPHA)
        assert value == pytest.approx(0.0255, abs=5e-5)

    def test_fig1_t2(self, fig1_graph):
        # t2: a -> h -> c, paper: 0.0216
        value = tour_reachability(fig1_graph, (A, H, C), ALPHA)
        assert value == pytest.approx(0.0217, abs=5e-5)

    def test_fig1_t3(self, fig1_graph):
        # t3: a -> d -> c, paper: 0.0108
        value = tour_reachability(fig1_graph, (A, D, C), ALPHA)
        assert value == pytest.approx(0.0108, abs=5e-5)

    def test_fig1_t4(self, fig1_graph):
        # t4: a -> b -> c, paper: 0.0072
        value = tour_reachability(fig1_graph, (A, B, C), ALPHA)
        assert value == pytest.approx(0.0072, abs=5e-5)

    def test_fig1_t5(self, fig1_graph):
        # t5: a -> f -> d -> c, paper: 0.0046
        t5 = tour_reachability(fig1_graph, (A, F, D, C), ALPHA)
        assert t5 == pytest.approx(0.0046, abs=5e-5)

    def test_fig1_t6_consistent_with_t4(self, fig1_graph):
        # The paper lists R(t6) = 0.0046, but that contradicts its own
        # R(t4) = 0.0072: both pass through b (out-degree 3 per the tour
        # list), so R(t6) = R(t4) * (1 - alpha) / out(d) must hold.  We
        # assert the self-consistent relation instead of the printed value.
        t4 = tour_reachability(fig1_graph, (A, B, C), ALPHA)
        t6 = tour_reachability(fig1_graph, (A, B, D, C), ALPHA)
        assert t6 == pytest.approx(t4 * (1 - ALPHA) / fig1_graph.out_degree(3))

    def test_longer_tour_smaller_reachability(self, fig1_graph):
        short = tour_reachability(fig1_graph, (A, C), ALPHA)
        long = tour_reachability(fig1_graph, (A, B, C), ALPHA)
        assert long < short

    def test_invalid_edge_raises(self, fig1_graph):
        with pytest.raises(ValueError, match="no edge"):
            tour_reachability(fig1_graph, (C, A), ALPHA)

    def test_empty_tour_raises(self, fig1_graph):
        with pytest.raises(ValueError):
            tour_reachability(fig1_graph, (), ALPHA)


class TestEnumerateTours:
    def test_exactly_seven_tours_a_to_c(self, fig1_graph):
        # Fig. 1(b): seven tours from a to c.
        tours = list(enumerate_tours(fig1_graph, A, max_length=10, target=C))
        assert len(tours) == 7

    def test_zero_length_tour_included(self, fig1_graph):
        tours = list(enumerate_tours(fig1_graph, A, max_length=0))
        assert tours == [(A,)]

    def test_cycle_enumeration_bounded(self, cyclic_graph):
        tours = list(enumerate_tours(cyclic_graph, 0, max_length=4))
        assert all(len(t) - 1 <= 4 for t in tours)
        assert len({t for t in tours}) == len(tours)  # no duplicates


class TestHubLength:
    def test_excludes_endpoints(self):
        hubs = {1, 3}
        assert hub_length((1, 2, 3), hubs) == 0  # 1, 3 are endpoints
        assert hub_length((0, 1, 2), hubs) == 1
        assert hub_length((0, 1, 3, 2), hubs) == 2

    def test_fig3_partitions(self, fig1_graph):
        # Paper Fig. 3(b): tours from a with their hub lengths.
        hubs = set(FIG3_HUBS)
        assert hub_length((A, C), hubs) == 0          # t1
        assert hub_length((A, H, C), hubs) == 0       # a->h->c: h is a stop-over
        assert hub_length((A, D, C), hubs) == 1       # t3
        assert hub_length((A, B, C), hubs) == 1       # t4
        assert hub_length((A, F, D, C), hubs) == 2    # t5
        assert hub_length((A, F, G, D, C), hubs) == 2 # t8: g not a hub

    def test_single_node_tour(self):
        assert hub_length((5,), {5}) == 0


class TestBruteForce:
    def test_matches_exact(self, fig1_graph):
        brute = brute_force_ppv(fig1_graph, A, max_length=10, alpha=ALPHA)
        exact = exact_ppv(fig1_graph, A, alpha=ALPHA)
        np.testing.assert_allclose(brute, exact, atol=1e-12)

    def test_truncation_error_bounded(self, cyclic_graph):
        exact = exact_ppv(cyclic_graph, 0, alpha=ALPHA)
        brute = brute_force_ppv(cyclic_graph, 0, max_length=15, alpha=ALPHA)
        assert np.abs(exact - brute).sum() <= (1 - ALPHA) ** 16 + 1e-12

    def test_increments_partition_ppv(self, fig1_graph):
        # Summing increments over all levels recovers the full PPV.
        total = np.zeros(fig1_graph.num_nodes)
        for level in range(4):
            total += brute_force_increment(
                fig1_graph, A, set(FIG3_HUBS), level, max_length=10, alpha=ALPHA
            )
        expected = brute_force_ppv(fig1_graph, A, max_length=10, alpha=ALPHA)
        np.testing.assert_allclose(total, expected, atol=1e-12)

    def test_increment_masses_decrease(self, fig1_graph):
        masses = [
            brute_force_increment(
                fig1_graph, A, set(FIG3_HUBS), level, max_length=10, alpha=ALPHA
            ).sum()
            for level in range(3)
        ]
        assert masses[0] > masses[1] > masses[2]
