"""Cross-process network serving: the TCP front-end over PPVService.

Everything in the other examples happens inside one Python process.
This one puts the service on the network (:mod:`repro.server`): an
asyncio TCP server speaking the versioned JSONL protocol, and plain
blocking clients talking to it from worker threads — the in-process
stand-in for independent client *processes* (the protocol makes no
difference between the two; `repro serve --tcp HOST:PORT` serves the
same wire format from the CLI, and `--workers N` pre-forks N serving
processes on one port).

Shown here:

1. concurrent clients whose queries coalesce into shared engine
   batches server-side,
2. pipelined bulk queries over one connection (``query_many``),
3. streaming frames over the wire,
4. a hot index swap under live traffic (zero dropped queries),
5. the ``stats`` verb: service counters + server counters.

Run with:  python examples/network_serving.py
"""

import threading

import numpy as np

from repro import PPVService, QuerySpec, build_index, select_hubs, social_graph
from repro.server import PPVClient, PPVServer
from repro.storage import save_index


def main() -> None:
    graph = social_graph(num_nodes=2000, seed=9)
    hubs = select_hubs(graph, num_hubs=200)
    index = build_index(graph, hubs, clip=0.0, epsilon=1e-6)

    rng = np.random.default_rng(3)
    nodes = [int(n) for n in rng.choice(graph.num_nodes, 24, replace=False)]

    with PPVService.open(index, graph=graph, delta=0.0) as service:
        server = PPVServer(service)
        with server.background() as (host, port):
            print(f"serving on {host}:{port}")

            # 1. Four concurrent clients; their queries coalesce into
            #    shared engine batches through the service's scheduler.
            def client_main(name: str, share) -> None:
                with PPVClient(host, port) as client:
                    for node in share:
                        result = client.query(node, eta=2, top=3)
                        top_node, score = result["top"][0]
                        print(f"  [{name}] node {node:4d} -> top {top_node} "
                              f"(score {score:.4f})")

            threads = [
                threading.Thread(
                    target=client_main, args=(f"client-{k}", nodes[k::4])
                )
                for k in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            with PPVClient(host, port) as client:
                # 2. Pipelined bulk queries over one connection.
                results = client.query_many(nodes, window=8, eta=2, top=1)
                print(f"pipelined {len(results)} queries over one connection")

                # 3. Streaming: frames until the top-5 certifies.
                for frame in client.stream(nodes[0], top_k=5):
                    state = "certified" if frame.get("certified") else "..."
                    print(f"  stream iter {frame['iteration']}: "
                          f"L1={frame['l1_error']:.4f} {state}")
                    if frame.get("certified"):
                        break

                # 4. Hot swap to a denser index under the same server.
                richer = build_index(
                    graph, select_hubs(graph, num_hubs=300),
                    clip=0.0, epsilon=1e-6,
                )
                import tempfile
                from pathlib import Path

                with tempfile.TemporaryDirectory() as tmp:
                    path = Path(tmp) / "richer.fppv"
                    save_index(richer, path)
                    client.swap_index(str(path))
                print("swapped to a 300-hub index without dropping a query")

                # 5. Counters.
                stats = client.stats()
                print(f"server answered {stats['server']['responses_total']} "
                      f"requests on {stats['server']['connections_total']} "
                      f"connections; service ran "
                      f"{stats['service']['batches']} engine batches "
                      f"(largest {stats['service']['largest_batch']})")


if __name__ == "__main__":
    main()
