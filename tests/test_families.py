"""The query-family registry: served ``hitting``/``reachability``
equivalence against the direct :mod:`repro.core` calls, family-tagged
wire round-trips, the structured ``unsupported_family`` error on the
TCP server and the shard router, family-isolated popularity caching,
and the per-family stats break-out."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import StopAfterIterations
from repro.core.hitting import DEFAULT_BETA, HittingEstimate, scheduled_hitting
from repro.core.query import QueryResult
from repro.core.reachability import ReachabilityResult, reachability_query
from repro.serving import (
    PPVService,
    QueryFamily,
    QuerySpec,
    UnsupportedFamilyError,
    available_families,
    register_family,
    resolve_family,
    supported_families,
)
from repro.serving.families import _FAMILIES, MAX_SERVED_TOUR_LENGTH
from repro.server import PPVClient, PPVServer, ServerError, protocol
from repro.sharding import ShardRouter, partition_index
from repro.storage import DiskGraphStore, cluster_graph, save_index


@pytest.fixture()
def memory_service(small_social, small_social_index):
    with PPVService.open(
        small_social_index, graph=small_social, delta=1e-4
    ) as service:
        yield service


@pytest.fixture(scope="module")
def disk_setup(small_social, small_social_index, tmp_path_factory):
    root = tmp_path_factory.mktemp("families_disk")
    index_path = root / "index.fppv"
    save_index(small_social_index, index_path)
    assignment = cluster_graph(small_social, 5, seed=1)
    store_dir = root / "clusters"
    DiskGraphStore(small_social, assignment, store_dir)
    return index_path, store_dir


@pytest.fixture()
def disk_service(disk_setup):
    index_path, store_dir = disk_setup
    graph_store = DiskGraphStore.open(store_dir)
    with PPVService.open(
        str(index_path), backend="disk", graph_store=graph_store, delta=0.0
    ) as service:
        yield service


@pytest.fixture(scope="module")
def shard_root(small_social, small_social_index, tmp_path_factory):
    root = tmp_path_factory.mktemp("families_shards")
    assignment = cluster_graph(small_social, 6, seed=1)
    part_root = root / "part2"
    partition_index(
        small_social, small_social_index, 2, part_root,
        assignment=assignment,
    )
    return part_root


def _direct_hitting(small_social, small_social_index, node, target,
                    **overrides):
    """The family's defaults, called straight into repro.core."""
    kwargs = dict(beta=DEFAULT_BETA, max_levels=16, epsilon=1e-9, delta=0.0)
    kwargs.update(overrides)
    return scheduled_hitting(
        small_social, node, target, small_social_index.hub_mask, **kwargs
    )


class TestRegistry:
    def test_builtins_registered(self):
        assert set(available_families()) >= {
            "ppv", "top_k", "hitting", "reachability"
        }
        assert resolve_family("hitting").name == "hitting"
        assert not resolve_family("hitting").streamable
        assert resolve_family("ppv").streamable

    def test_unknown_family(self):
        with pytest.raises(KeyError, match="unknown query family"):
            resolve_family("nope")

    def test_unknown_family_through_service(self, memory_service):
        with pytest.raises(ValueError, match="unknown query family"):
            memory_service.query(QuerySpec(3, family="nope"))

    def test_register_custom_family_gets_full_stack(self, memory_service):
        class DegreeFamily(QueryFamily):
            name = "degree"

            def run_group(self, engine, family_key, members):
                return [
                    int(engine.graph.out_degree(task.node))
                    for _spec, task in members
                ]

            def encode_result(self, spec, result, top):
                return {
                    "family": self.name,
                    "nodes": list(spec.nodes),
                    "degree": int(result),
                }

        register_family(DegreeFamily())
        try:
            spec = QuerySpec(5, family="degree")
            result = memory_service.query(spec)
            graph = memory_service.engine.graph
            assert result == int(graph.out_degree(5))
            # Wire codec rides along for free.
            decoded = protocol.spec_from_request(
                {"node": 5, "family": "degree"}
            )
            assert decoded.family == "degree"
            payload = protocol.render_result(spec, result, top=3)
            assert payload == {"family": "degree", "nodes": [5],
                               "degree": result}
            assert "degree" in memory_service.families()
        finally:
            _FAMILIES.pop("degree", None)

    def test_register_needs_a_name(self):
        with pytest.raises(ValueError, match="non-empty name"):
            register_family(QueryFamily())


class TestServedEquivalence:
    """Served family results are the direct repro.core calls' results."""

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(data=st.data())
    def test_hitting_matches_direct_call(self, data, small_social,
                                         small_social_index, memory_service):
        num_nodes = small_social.num_nodes
        node = data.draw(st.integers(0, num_nodes - 1), label="node")
        target = data.draw(st.integers(0, num_nodes - 1), label="target")
        served = memory_service.query(
            QuerySpec(node, family="hitting", params={"target": target})
        )
        direct = _direct_hitting(
            small_social, small_social_index, node, target
        )
        assert isinstance(served, HittingEstimate)
        assert served.value == direct.value
        assert served.remaining_mass == direct.remaining_mass
        assert served.iterations == direct.iterations
        assert served.history == direct.history

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(data=st.data())
    def test_reachability_matches_direct_call(self, data, small_social,
                                              memory_service):
        num_nodes = small_social.num_nodes
        node = data.draw(st.integers(0, num_nodes - 1), label="node")
        max_length = data.draw(st.integers(0, 4), label="max_length")
        served = memory_service.query(
            QuerySpec(node, family="reachability",
                      params={"max_length": max_length})
        )
        direct = reachability_query(small_social, node, max_length)
        assert isinstance(served, ReachabilityResult)
        np.testing.assert_array_equal(served.scores, direct.scores)
        assert served.truncation_bound == direct.truncation_bound
        assert served.max_length == direct.max_length

    def test_coalesced_hitting_group_stays_bitwise(self, small_social,
                                                   small_social_index,
                                                   memory_service):
        """Same-target specs share one push cache in a coalesced group;
        sharing must not change a single bit of any member's answer."""
        nodes = [3, 17, 42, 99, 3]
        served = memory_service.query_many(
            [
                QuerySpec(n, family="hitting", params={"target": 7})
                for n in nodes
            ]
        )
        for node, result in zip(nodes, served):
            direct = _direct_hitting(
                small_social, small_social_index, node, 7
            )
            assert result.value == direct.value
            assert result.remaining_mass == direct.remaining_mass
            assert result.history == direct.history

    def test_hitting_parameter_overrides_are_honoured(self, small_social,
                                                      small_social_index,
                                                      memory_service):
        served = memory_service.query(
            QuerySpec(9, family="hitting",
                      params={"target": 4, "beta": 0.5, "max_levels": 6})
        )
        direct = _direct_hitting(
            small_social, small_social_index, 9, 4, beta=0.5, max_levels=6
        )
        assert served.value == direct.value
        assert served.iterations == direct.iterations


class TestValidation:
    def test_hitting_needs_target(self, memory_service):
        with pytest.raises(ValueError, match='needs a "target"'):
            memory_service.query(QuerySpec(3, family="hitting"))

    def test_hitting_is_single_node(self, memory_service):
        with pytest.raises(ValueError, match="single query node"):
            memory_service.query(
                QuerySpec((3, 4), family="hitting", params={"target": 5})
            )

    def test_hitting_target_range_checked(self, memory_service):
        with pytest.raises(ValueError, match="out of range"):
            memory_service.query(
                QuerySpec(3, family="hitting", params={"target": 10**6})
            )

    def test_reachability_length_is_capped(self, memory_service):
        too_long = MAX_SERVED_TOUR_LENGTH + 1
        with pytest.raises(ValueError, match="exponential"):
            memory_service.query(
                QuerySpec(3, family="reachability",
                          params={"max_length": too_long})
            )

    def test_unknown_parameter_rejected(self, memory_service):
        with pytest.raises(ValueError, match="unknown hitting parameter"):
            memory_service.query(
                QuerySpec(3, family="hitting",
                          params={"target": 5, "bogus": 1})
            )

    def test_spec_family_field_rules(self):
        with pytest.raises(ValueError, match='family "top_k" needs'):
            QuerySpec(3, family="top_k")
        with pytest.raises(ValueError, match="does not take top_k"):
            QuerySpec(3, family="hitting", top_k=5)
        with pytest.raises(ValueError, match="takes no params"):
            QuerySpec(3, params={"target": 5})

    def test_non_streamable_family_refused(self, memory_service):
        with pytest.raises(ValueError, match="does not stream"):
            memory_service.stream(
                QuerySpec(3, family="reachability")
            )


class TestCapabilities:
    def test_memory_backend_serves_everything(self, memory_service):
        assert set(memory_service.families()) >= {
            "ppv", "top_k", "hitting", "reachability"
        }

    def test_disk_backend_refuses_graph_resident_families(
        self, disk_service
    ):
        supported = supported_families(disk_service.engine)
        assert "ppv" in supported and "top_k" in supported
        assert "hitting" not in supported
        assert "reachability" not in supported
        with pytest.raises(UnsupportedFamilyError) as excinfo:
            disk_service.query(
                QuerySpec(3, family="hitting", params={"target": 5})
            )
        assert excinfo.value.family == "hitting"
        assert excinfo.value.backend == "disk"
        # Family-unaware callers still see a plain ValueError.
        assert isinstance(excinfo.value, ValueError)


class TestWire:
    def test_hitting_round_trip(self, small_social, small_social_index,
                                memory_service):
        server = PPVServer(memory_service)
        with server.background() as address:
            with PPVClient(*address) as client:
                payload = client.query(
                    11, family="hitting", params={"target": 3}
                )
        direct = _direct_hitting(small_social, small_social_index, 11, 3)
        assert payload["family"] == "hitting"
        assert payload["nodes"] == [11]
        assert payload["target"] == 3
        assert payload["value"] == direct.value
        assert payload["remaining_mass"] == direct.remaining_mass
        assert payload["upper_bound"] == direct.value + direct.remaining_mass
        assert payload["history"] == list(direct.history)

    def test_reachability_round_trip(self, small_social, memory_service):
        server = PPVServer(memory_service)
        with server.background() as address:
            with PPVClient(*address) as client:
                payload = client.query(
                    11, family="reachability",
                    params={"max_length": 3}, top=5,
                )
        direct = reachability_query(small_social, 11, 3)
        assert payload["family"] == "reachability"
        assert payload["max_length"] == 3
        assert payload["truncation_bound"] == direct.truncation_bound
        assert payload["top"] == [
            [node, score] for node, score in direct.top_k(5)
        ]

    def test_ppv_and_topk_payloads_unchanged(self, memory_service):
        """Pre-registry clients keep working: family-less requests mean
        what they always did and their payloads carry no family key."""
        server = PPVServer(memory_service)
        with server.background() as address:
            with PPVClient(*address) as client:
                plain = client.query(5, eta=2)
                tagged = client.query(5, eta=2, family="ppv")
                topk = client.query(5, top_k=4)
        assert "family" not in plain
        assert "family" not in topk
        assert tagged == plain
        assert "certified" in topk

    def test_family_defaulting_in_decode(self):
        assert protocol.spec_from_request({"node": 3}).family == "ppv"
        assert (
            protocol.spec_from_request({"node": 3, "top_k": 5}).family
            == "top_k"
        )
        spec = protocol.spec_from_request(
            {"node": 3, "family": "hitting", "target": 7, "beta": 0.5}
        )
        assert spec.family == "hitting"
        assert spec.params_dict() == {"target": 7, "beta": 0.5}

    def test_unknown_family_is_structured(self, memory_service):
        server = PPVServer(memory_service)
        with server.background() as address:
            with PPVClient(*address) as client:
                with pytest.raises(ServerError) as excinfo:
                    client.query(3, family="nope")
        assert excinfo.value.code == protocol.E_UNSUPPORTED_FAMILY

    def test_unsupported_family_is_structured_on_disk(self, disk_setup):
        index_path, store_dir = disk_setup
        graph_store = DiskGraphStore.open(store_dir)
        with PPVService.open(
            str(index_path), backend="disk", graph_store=graph_store,
            delta=0.0,
        ) as service:
            server = PPVServer(service)
            with server.background() as address:
                with PPVClient(*address) as client:
                    with pytest.raises(ServerError) as excinfo:
                        client.query(
                            3, family="reachability",
                            params={"max_length": 2},
                        )
                    assert (
                        excinfo.value.code == protocol.E_UNSUPPORTED_FAMILY
                    )
                    # Advertised capabilities match the refusal.
                    stats = client.stats()
                    assert "reachability" not in stats["families"]
                    assert "ppv" in stats["families"]

    def test_bad_family_params_are_invalid_not_internal(
        self, memory_service
    ):
        server = PPVServer(memory_service)
        with server.background() as address:
            with PPVClient(*address) as client:
                with pytest.raises(ServerError) as excinfo:
                    client.query(3, family="hitting")  # no target
        assert excinfo.value.code == protocol.E_INVALID


class TestCacheIsolation:
    def test_families_never_alias_in_the_cache(self, memory_service):
        stop = StopAfterIterations(2)
        first = memory_service.query(QuerySpec(5, stop=stop))
        assert memory_service.cache.hits == 0
        again = memory_service.query(QuerySpec(5, stop=stop))
        assert memory_service.cache.hits == 1
        np.testing.assert_array_equal(first.scores, again.scores)
        # Same node, different family: a miss, not a cross-family hit.
        reach = memory_service.query(
            QuerySpec(5, family="reachability", params={"max_length": 2})
        )
        assert memory_service.cache.hits == 1
        assert isinstance(reach, ReachabilityResult)
        reach_again = memory_service.query(
            QuerySpec(5, family="reachability", params={"max_length": 2})
        )
        assert memory_service.cache.hits == 2
        np.testing.assert_array_equal(reach.scores, reach_again.scores)
        # And the PPV entry is still the PPV result.
        ppv_again = memory_service.query(QuerySpec(5, stop=stop))
        assert isinstance(ppv_again, QueryResult)
        assert memory_service.cache.hits == 3

    def test_hitting_cache_keys_include_parameters(self, memory_service):
        spec_a = QuerySpec(5, family="hitting", params={"target": 3})
        spec_b = QuerySpec(
            5, family="hitting", params={"target": 3, "beta": 0.5}
        )
        memory_service.query(spec_a)
        memory_service.query(spec_b)
        assert memory_service.cache.hits == 0
        result = memory_service.query(spec_a)
        assert memory_service.cache.hits == 1
        assert isinstance(result, HittingEstimate)


class TestPerFamilyStats:
    def test_service_breaks_stats_out_per_family(self, memory_service):
        stop = StopAfterIterations(2)
        memory_service.query_many(
            [QuerySpec(n, stop=stop) for n in (3, 9)]
        )
        memory_service.query(QuerySpec(7, top_k=4))
        memory_service.query(
            QuerySpec(5, family="hitting", params={"target": 3})
        )
        stats = memory_service.stats()
        assert stats.families["ppv"]["submitted"] == 2
        assert stats.families["top_k"]["submitted"] == 1
        assert stats.families["hitting"]["submitted"] == 1
        assert "reachability" not in stats.families
        for entry in stats.families.values():
            assert entry["latency"]["count"] == entry["submitted"]
        assert stats.submitted == 4


class TestShardRouter:
    def test_router_refuses_and_advertises_families(self, shard_root):
        with ShardRouter(shard_root, delta=1e-4, cache_size=0) as address:
            with PPVClient(*address) as client:
                # Graph-resident families cannot run over remote stores:
                # the refusal is the structured wire error, not a hang or
                # an internal failure.
                with pytest.raises(ServerError) as excinfo:
                    client.query(
                        3, family="hitting", params={"target": 5}
                    )
                assert excinfo.value.code == protocol.E_UNSUPPORTED_FAMILY
                with pytest.raises(ServerError) as excinfo:
                    client.query(
                        3, family="reachability",
                        params={"max_length": 2},
                    )
                assert excinfo.value.code == protocol.E_UNSUPPORTED_FAMILY
                # PPV families still serve, and the capability set says so.
                payload = client.query(3, eta=2)
                assert payload["nodes"] == [3]
                stats = client.stats()
                assert "ppv" in stats["families"]
                assert "top_k" in stats["families"]
                assert "hitting" not in stats["families"]
                # The router front-end's own service stats carry the
                # per-family break-out.
                assert stats["service"]["families"]["ppv"]["submitted"] == 1

    def test_shard_stats_aggregate_families(self, shard_root):
        with ShardRouter(shard_root, delta=1e-4, cache_size=0) as address:
            with PPVClient(*address) as client:
                client.query(3, eta=2)
                stats = client.stats()
        # Shard workers serve fetch verbs, not queries, so the fleet
        # aggregation is present (and empty) while each per-shard entry
        # carries its own families dict.
        shards = stats["shards"]
        assert shards["families"] == {}
        for entry in shards["per_shard"]:
            assert entry["families"] == {}
