"""Unit behaviour of the wire protocol (:mod:`repro.server.protocol`):
request parsing/validation, spec translation, and rendering."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.query import (
    StopAfterIterations,
    StopAfterTime,
    StopAtL1Error,
)
from repro.server import protocol
from repro.server.protocol import ProtocolError
from repro.serving.spec import DEFAULT_TOPK_BUDGET, QuerySpec


class TestParseRequest:
    def test_round_trip(self):
        request = protocol.parse_request(b'{"id": 1, "node": 7}')
        assert request == {"id": 1, "node": 7}

    @pytest.mark.parametrize(
        "line",
        [b"{broken", b"", b"null", b"42", b'"text"', b"[1, 2]", b"true"],
    )
    def test_malformed_lines(self, line):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.parse_request(line)
        assert excinfo.value.code == protocol.E_MALFORMED

    def test_invalid_utf8_is_malformed(self):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.parse_request(b'\xff\xfe{"id": 1}')
        assert excinfo.value.code == protocol.E_MALFORMED

    def test_version_check_accepts_current_and_default(self):
        protocol.check_version({"v": protocol.PROTOCOL_VERSION})
        protocol.check_version({})  # version omitted: assumed current

    @pytest.mark.parametrize("version", [0, 2, "1", None])
    def test_version_check_refuses_others(self, version):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.check_version({"v": version})
        assert excinfo.value.code == protocol.E_UNSUPPORTED_VERSION

    def test_protocol_error_is_a_value_error(self):
        # The stdio loop reports plain messages; the subclassing keeps
        # its generic except clauses working.
        assert issubclass(ProtocolError, ValueError)


class TestRequestVerb:
    def test_defaults_to_query(self):
        assert protocol.request_verb({}) == "query"

    @pytest.mark.parametrize("verb", list(protocol.VERBS))
    def test_known_verbs(self, verb):
        assert protocol.request_verb({"verb": verb}) == verb

    @pytest.mark.parametrize("verb", ["frobnicate", "", 7, None])
    def test_unknown_verbs(self, verb):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.request_verb({"verb": verb})
        assert excinfo.value.code == protocol.E_UNKNOWN_VERB


class TestSpecFromRequest:
    def test_single_node_defaults(self):
        spec = protocol.spec_from_request({"node": 7})
        assert spec.nodes == (7,)
        assert spec.resolved_stop() == StopAfterIterations(2)

    def test_eta_and_error_and_time_conditions(self):
        spec = protocol.spec_from_request(
            {"node": 3, "eta": 5, "target_error": 0.01, "time_limit": 0.5}
        )
        conditions = spec.stop.conditions
        assert StopAfterIterations(5) in conditions
        assert StopAtL1Error(0.01) in conditions
        assert StopAfterTime(0.5) in conditions

    def test_weighted_node_set(self):
        spec = protocol.spec_from_request(
            {"nodes": [3, 9], "weights": [2, 1]}
        )
        assert spec.nodes == (3, 9)
        np.testing.assert_allclose(spec.weight_array(), [2 / 3, 1 / 3])

    def test_top_k_with_default_budget(self):
        spec = protocol.spec_from_request({"node": 1, "top_k": 10})
        assert spec.top_k == 10
        assert spec.top_k_budget == DEFAULT_TOPK_BUDGET

    def test_top_k_budget(self):
        spec = protocol.spec_from_request(
            {"node": 1, "top_k": 10, "budget": 4}
        )
        assert spec.top_k_budget == 4

    @pytest.mark.parametrize(
        "request_body",
        [
            {},  # no node at all
            {"node": "seven"},
            {"nodes": []},
            {"node": 1, "eta": "fast"},
            {"node": 1, "top_k": 0},
            {"node": 1, "top_k": 5, "budget": -1},
            {"nodes": [1, 2], "weights": [1, -2]},
        ],
    )
    def test_invalid_requests(self, request_body):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.spec_from_request(request_body)
        assert excinfo.value.code == protocol.E_INVALID


class TestRendering:
    def test_encode_is_one_line(self):
        payload = protocol.encode({"id": 1, "ok": True})
        assert payload.endswith(b"\n")
        assert payload.count(b"\n") == 1
        assert json.loads(payload) == {"id": 1, "ok": True}

    def test_error_response_shape(self):
        response = protocol.error_response(9, protocol.E_INVALID, "nope")
        assert response == {
            "v": protocol.PROTOCOL_VERSION,
            "id": 9,
            "ok": False,
            "error": {"code": protocol.E_INVALID, "message": "nope"},
        }

    def test_ok_response_omits_null_result(self):
        assert "result" not in protocol.ok_response(1)
        assert protocol.ok_response(1, {"x": 2})["result"] == {"x": 2}

    def test_render_result_memory_plain(self, small_social,
                                        small_social_index):
        from repro.serving import PPVService, QuerySpec as Spec

        with PPVService.open(
            small_social_index, graph=small_social
        ) as service:
            spec = Spec(7)
            result = service.query(spec)
        payload = protocol.render_result(spec, result, top=5)
        assert payload["nodes"] == [7]
        assert payload["iterations"] == result.iterations
        assert payload["l1_error"] == result.l1_error
        assert len(payload["top"]) == 5
        node, score = payload["top"][0]
        assert score == float(result.scores[node])
        # JSON round-trip preserves the float bit pattern.
        assert json.loads(json.dumps(payload)) == payload

    def test_render_snapshot_carries_certificate(self):
        from repro.serving.spec import QuerySnapshot

        snapshot = QuerySnapshot(
            iteration=1,
            l1_error=0.25,
            frontier_size=3,
            scores=np.array([0.5, 0.25, 0.0, 0.125]),
            certified=False,
        )
        frame = protocol.render_snapshot(snapshot, top=2)
        assert frame["iteration"] == 1
        assert frame["certified"] is False
        assert frame["top"] == [[0, 0.5], [1, 0.25]]

    def test_render_snapshot_plain_has_no_certificate(self):
        from repro.serving.spec import QuerySnapshot

        snapshot = QuerySnapshot(
            iteration=0,
            l1_error=0.5,
            frontier_size=1,
            scores=np.array([1.0, 0.0]),
        )
        assert "certified" not in protocol.render_snapshot(snapshot, top=1)
