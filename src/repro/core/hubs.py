"""Hub selection (Sect. 4, Eq. 7; policy comparison in Sect. 6.2).

A good hub is simultaneously *discriminating* (high out-degree decays tours
passing through it, so hub length separates important from unimportant
tours) and *shared* (popular, so many tours reuse its precomputed prime
PPV).  The paper integrates both into **expected utility**

    EU(v) = PageRank(v) * out_degree(v)                       (Eq. 7)

and compares against PageRank-only, out-degree-only and random selection.
All four are provided, plus in-degree (mentioned as the cheap popularity
alternative in Sect. 4).
"""

from __future__ import annotations

import enum

import numpy as np

from repro.graph.digraph import DiGraph
from repro.graph.pagerank import DEFAULT_ALPHA, global_pagerank


class HubPolicy(enum.Enum):
    """How to score nodes when picking hubs."""

    EXPECTED_UTILITY = "expected-utility"
    PAGERANK = "pagerank"
    OUT_DEGREE = "out-degree"
    IN_DEGREE = "in-degree"
    RANDOM = "random"


def hub_scores(
    graph: DiGraph,
    policy: HubPolicy = HubPolicy.EXPECTED_UTILITY,
    alpha: float = DEFAULT_ALPHA,
    pagerank: np.ndarray | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Per-node selection score under ``policy`` (higher is better).

    ``pagerank`` may be supplied to avoid recomputation when several
    policies are evaluated on the same graph.
    """
    if policy is HubPolicy.OUT_DEGREE:
        return graph.out_degrees.astype(float)
    if policy is HubPolicy.IN_DEGREE:
        return graph.in_degrees().astype(float)
    if policy is HubPolicy.RANDOM:
        rng = np.random.default_rng(seed)
        return rng.random(graph.num_nodes)
    if pagerank is None:
        pagerank = global_pagerank(graph, alpha=alpha)
    if policy is HubPolicy.PAGERANK:
        return pagerank.copy()
    if policy is HubPolicy.EXPECTED_UTILITY:
        return pagerank * graph.out_degrees
    raise ValueError(f"unknown policy {policy!r}")


def select_hubs(
    graph: DiGraph,
    num_hubs: int,
    policy: HubPolicy = HubPolicy.EXPECTED_UTILITY,
    alpha: float = DEFAULT_ALPHA,
    pagerank: np.ndarray | None = None,
    seed: int = 0,
) -> np.ndarray:
    """The ``num_hubs`` nodes with the largest policy score.

    Returns
    -------
    numpy.ndarray
        Sorted ``int64`` array of hub node ids.  Ties are broken by node id
        (deterministic).
    """
    if num_hubs < 0:
        raise ValueError("num_hubs must be non-negative")
    num_hubs = min(num_hubs, graph.num_nodes)
    if num_hubs == 0:
        return np.empty(0, dtype=np.int64)
    scores = hub_scores(graph, policy, alpha=alpha, pagerank=pagerank, seed=seed)
    # argsort on (-score, id) for a deterministic tie-break.
    order = np.lexsort((np.arange(graph.num_nodes), -scores))
    hubs = np.sort(order[:num_hubs].astype(np.int64))
    return hubs
