"""Pre-fork multi-worker serving: N processes, one shared listen socket.

Python's GIL caps one process's query throughput no matter how many
connections the asyncio front-end multiplexes.  The pool escapes it the
classic pre-fork way: the parent binds the listening socket, forks ``N``
workers, and every worker accepts from the *same* socket — the kernel
load-balances connections, no proxy hop, no port juggling.

Each worker builds its **own** :class:`~repro.serving.PPVService` from a
``service_factory`` callable *after* the fork, so per-worker state with
process affinity (the scheduler drain thread, open file handles such as
a :class:`~repro.storage.ppv_store.DiskPPVStore`'s) is never shared
across processes, while the big read-only inputs the factory closes
over (graph, index) are inherited copy-on-write — every worker opens
the index read-only without paying for a copy.

:class:`ServerPool` is the inspectable lifecycle object (start, look up
worker pids, SIGKILL one deterministically, stop, read exit codes) that
the fault-injection suites drive; :func:`run_pool` wraps it with the
signal plumbing a foreground CLI run needs.

Requires a platform with the ``fork`` start method (Linux, most BSDs);
:class:`ServerPool` says so loudly otherwise.  Hot ``swap_index``
requests apply to the worker that received them — with shared-nothing
workers a cluster-wide swap is a client-side fan-out (one swap per
connection until ``stats`` shows every pid swapped) or a rolling
restart.
"""

from __future__ import annotations

import multiprocessing
import signal
import socket

from repro.server.server import PPVServer, ServerConfig


def _raise_interrupt(signum, frame):  # pragma: no cover - signal path
    raise KeyboardInterrupt


def _worker_main(
    worker_index: int, sock, service_factory, config, fault_plan=None
) -> None:
    """Entry point of one forked worker: build, serve, clean up."""
    import asyncio

    # The parent's handlers must not fire twice; the server installs its
    # own graceful SIGTERM/SIGINT handling inside the event loop.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    sock = _worker_socket(worker_index, sock)
    service = service_factory()
    server = PPVServer(
        service, config, worker_index=worker_index, fault_plan=fault_plan
    )
    try:
        asyncio.run(server.serve(sock=sock))
    finally:
        service.close()


def _worker_socket(worker_index: int, inherited: socket.socket):
    """The listen socket one worker should accept from.

    Worker 0 keeps the inherited (parent-bound) socket so the port is
    never without a listener; the others bind their own ``SO_REUSEPORT``
    siblings to the same address, which makes the *kernel* hash incoming
    connections evenly across workers — a shared accept queue lets one
    event loop grab a whole burst of connections while its siblings
    idle.  Falls back to the shared queue where ``SO_REUSEPORT`` is
    unavailable.
    """
    if worker_index == 0:
        return inherited
    try:
        own = socket.create_server(
            inherited.getsockname()[:2], family=socket.AF_INET,
            backlog=128, reuse_port=True,
        )
    except (OSError, ValueError):  # pragma: no cover - platform-dependent
        # ValueError: this platform's socket module has no SO_REUSEPORT
        # (create_server refuses before even trying to bind).
        return inherited
    own.setblocking(False)
    inherited.close()
    return own


def open_listen_socket(host: str, port: int, backlog: int = 128) -> socket.socket:
    """Bind the pool's primary listening socket (port 0 picks a free
    port).  Bound with ``SO_REUSEPORT`` where available so worker
    processes can join the kernel's load-balancing group with their own
    sockets (:func:`_worker_socket`)."""
    try:
        sock = socket.create_server(
            (host, port), family=socket.AF_INET, backlog=backlog,
            reuse_port=True,
        )
    except (OSError, ValueError):  # pragma: no cover - platform-dependent
        sock = socket.create_server(
            (host, port), family=socket.AF_INET, backlog=backlog,
        )
    sock.setblocking(False)
    return sock


class ServerPool:
    """A pre-fork worker pool with an inspectable lifecycle.

    Use as a context manager (or :meth:`start` / :meth:`stop`)::

        with ServerPool(factory, workers=2) as pool:
            host, port = pool.address
            ...
            pool.kill_worker(1)          # fault injection: SIGKILL

    Parameters
    ----------
    service_factory:
        Zero-argument callable building one worker's ``PPVService``.
        Called inside each worker after the fork; whatever it closes
        over is inherited copy-on-write.
    workers:
        Number of processes (>= 1; 1 still forks, for a uniform
        lifecycle).
    config:
        Transport tunables; ``config.host``/``config.port`` name the
        shared socket.
    fault_plan:
        Tests only: a :class:`repro.faults.FaultPlan` inherited by every
        worker across the fork and installed on its
        :class:`~repro.server.server.PPVServer` — a ``kill`` rule on the
        ``server.request`` site SIGKILLs the worker that hit it.
    """

    def __init__(
        self,
        service_factory,
        workers: int,
        config: ServerConfig | None = None,
        fault_plan=None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platform-dependent
            raise RuntimeError(
                "multi-worker serving needs the 'fork' start method; "
                "run with --workers 1 on this platform"
            ) from None
        self.service_factory = service_factory
        self.num_workers = workers
        self.config = config or ServerConfig()
        self.fault_plan = fault_plan
        self.children: list = []
        self.address: tuple | None = None
        self._sock: socket.socket | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle

    def start(self, announce=None) -> tuple:
        """Bind the shared socket, fork the workers, return the address.

        ``announce`` (if given) receives the bound ``(host, port)``
        before the first worker starts.
        """
        if self._sock is not None:
            raise RuntimeError("pool already started")
        self._sock = open_listen_socket(self.config.host, self.config.port)
        try:
            self.address = self._sock.getsockname()[:2]
            if announce is not None:
                announce(self.address)
            for index in range(self.num_workers):
                child = self._context.Process(
                    target=_worker_main,
                    args=(
                        index,
                        self._sock,
                        self.service_factory,
                        self.config,
                        self.fault_plan,
                    ),
                    name=f"ppv-worker-{index}",
                    daemon=False,
                )
                child.start()
                self.children.append(child)
        except BaseException:
            self.stop()
            raise
        return self.address

    def __enter__(self) -> "ServerPool":
        if self._sock is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def join(self) -> None:
        """Block until every worker exits on its own."""
        for child in self.children:
            child.join()

    def stop(self) -> int:
        """Tear the pool down and return the worst worker exit code.

        Graceful first (workers drain in-flight work on SIGTERM), then
        force whatever ignored it; finally the shared socket closes.
        Idempotent.
        """
        try:
            for child in self.children:
                if child.is_alive():
                    child.terminate()
            for child in self.children:
                child.join(timeout=30)
            for child in self.children:
                if child.is_alive():  # pragma: no cover - last resort
                    child.kill()
                    child.join()
        finally:
            if self._sock is not None:
                self._sock.close()
                self._sock = None
        return self.worst_exit_code()

    # ------------------------------------------------------------------ #
    # Inspection / fault injection

    @property
    def pids(self) -> list:
        """Worker pids, by worker index."""
        return [child.pid for child in self.children]

    def alive_workers(self) -> list[int]:
        """Indices of workers currently running."""
        return [
            index
            for index, child in enumerate(self.children)
            if child.is_alive()
        ]

    def kill_worker(self, index: int) -> None:
        """SIGKILL one worker — no drain, no cleanup (fault injection).

        The port keeps serving as long as any sibling lives; the killed
        worker's in-flight connections die with it, which is exactly the
        failure the lifecycle suites assert clients survive.
        """
        child = self.children[index]
        if child.is_alive():
            child.kill()
        child.join(timeout=30)

    def exitcodes(self) -> list:
        """Per-worker exit codes (``None`` while still running;
        negative = killed by that signal, the multiprocessing
        convention)."""
        return [child.exitcode for child in self.children]

    def worst_exit_code(self) -> int:
        """The pool's aggregate exit code, shell convention.

        A worker torn down by our own SIGTERM is a clean exit; any
        other signal death maps to ``128 + signum`` so a crashed worker
        can never masquerade as success.
        """
        worst = 0
        for child in self.children:
            code = child.exitcode or 0
            if code == -signal.SIGTERM or code == 0:
                continue
            worst = max(worst, 128 - code if code < 0 else code)
        return worst


def run_pool(
    service_factory,
    workers: int,
    config: ServerConfig | None = None,
    announce=None,
    fault_plan=None,
) -> int:
    """Serve with ``workers`` pre-forked processes until interrupted.

    The foreground CLI entry point over :class:`ServerPool`: it adds the
    signal forwarding a terminal run needs (a SIGTERM/SIGINT to the pool
    parent must reach the workers — the parent's default action would
    orphan them mid-serve) and blocks until the workers exit.

    Returns the worst worker exit code (0 when all exited cleanly).
    """
    pool = ServerPool(
        service_factory, workers, config=config, fault_plan=fault_plan
    )
    pool.start(announce)
    restore = []
    try:
        try:
            for signum in (signal.SIGTERM, signal.SIGINT):
                restore.append(
                    (signum, signal.signal(signum, _raise_interrupt))
                )
        except ValueError:  # not the main thread (embedded use)
            pass
        try:
            pool.join()
        except KeyboardInterrupt:
            pass
    finally:
        for signum, handler in restore:
            signal.signal(signum, handler)
        worst = pool.stop()
    return worst
