"""Certified top-k serving throughput: batched vs scalar certificates.

The certified top-k rule iterates per query until the phi-gap certificate
fires, so different queries need different iteration counts — the batch
engine retires each query the moment its certificate holds while the rest
keep iterating.  This bench records queries/sec for the scalar
``query_top_k`` loop against ``BatchFastPPV.query_top_k_many`` at
increasing batch sizes, plus how early certificates fire (mean iterations
and the L1 error still outstanding at stop — the point of bound-based
top-k: ranking needs far less work than scoring).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.common import BENCH_SCALE, emit
from repro import (
    BatchFastPPV,
    FastPPV,
    build_index,
    query_top_k,
    select_hubs,
    social_graph,
)
from repro.experiments.report import Table

K = 10
MAX_ITERATIONS = 40
BATCH_SIZES = (1, 8, 16, 64)


@pytest.fixture(scope="module")
def setup():
    num_nodes = max(1200, int(8000 * BENCH_SCALE))
    num_hubs = max(120, int(800 * BENCH_SCALE))
    graph = social_graph(num_nodes=num_nodes, seed=11)
    hubs = select_hubs(graph, num_hubs=num_hubs)
    # clip=0 + delta=0: sound certificates (see repro.core.topk).
    index = build_index(graph, hubs, clip=0.0)
    rng = np.random.default_rng(0)
    queries = rng.choice(graph.num_nodes, size=max(BATCH_SIZES), replace=False)
    return graph, index, queries


def _best_rate(run, size: int, repetitions: int = 3) -> float:
    best = float("inf")
    for _ in range(repetitions):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return size / best


def test_topk_batch_throughput(benchmark, setup):
    graph, index, queries = setup
    scalar = FastPPV(graph, index, delta=0.0)
    batch = BatchFastPPV(graph, index, delta=0.0, cache_size=0)
    batch.splice  # build the matrix lowering outside the timed region

    table = Table(
        title=f"Certified top-{K} throughput ({graph.num_nodes} nodes, "
        f"{index.num_hubs} hubs, delta=0)",
        headers=["batch", "scalar q/s", "batch q/s", "speedup",
                 "mean iters", "certified"],
    )
    speedup_at_max = 0.0
    for size in BATCH_SIZES:
        workload = [int(q) for q in queries[:size]]
        scalar_rate = _best_rate(
            lambda: [
                query_top_k(scalar, q, k=K, max_iterations=MAX_ITERATIONS)
                for q in workload
            ],
            size,
        )
        batch_rate = _best_rate(
            lambda: batch.query_top_k_many(
                workload, k=K, max_iterations=MAX_ITERATIONS
            ),
            size,
        )
        results = batch.query_top_k_many(
            workload, k=K, max_iterations=MAX_ITERATIONS
        )
        mean_iters = float(np.mean([r.iterations for r in results]))
        certified = sum(r.certified for r in results)
        speedup = batch_rate / scalar_rate
        if size == max(BATCH_SIZES):
            speedup_at_max = speedup
        table.add_row(
            size, f"{scalar_rate:.0f}", f"{batch_rate:.0f}",
            f"{speedup:.2f}x", f"{mean_iters:.1f}", f"{certified}/{size}",
        )
    emit("topk_batch", table)

    # Equivalence at the largest batch: same certificates, same work.
    workload = [int(q) for q in queries]
    batch_results = batch.query_top_k_many(
        workload, k=K, max_iterations=MAX_ITERATIONS
    )
    for query, result in zip(workload, batch_results):
        reference = query_top_k(scalar, query, k=K,
                                max_iterations=MAX_ITERATIONS)
        assert result.certified == reference.certified
        assert result.iterations == reference.iterations
        if reference.certified:
            assert set(result.nodes.tolist()) == set(reference.nodes.tolist())
        np.testing.assert_allclose(result.scores, reference.scores, atol=1e-12)

    # Headline acceptance at full scale; reduced-scale smoke runs (CI)
    # only require the batch path to not be slower.
    floor = 2.0 if BENCH_SCALE >= 0.4 else 0.9
    assert speedup_at_max >= floor, (
        f"batched top-k speedup {speedup_at_max:.2f}x below {floor}x at "
        f"batch {max(BATCH_SIZES)}"
    )

    benchmark(
        lambda: batch.query_top_k_many(workload, k=K,
                                       max_iterations=MAX_ITERATIONS)
    )
