"""Tests for the hitting-time generalisation of scheduled approximation."""

import numpy as np
import pytest

from repro.core.hitting import exact_hitting, scheduled_hitting
from repro.graph import from_edges
from repro.graph.generators import cycle_graph, path_graph

BETA = 0.85


class TestExactHitting:
    def test_target_is_one(self, cyclic_graph):
        assert exact_hitting(cyclic_graph, 2, 2, BETA) == 1.0

    def test_path_graph_analytic(self):
        # On 0 -> 1 -> 2, f_2(0) = beta^2 exactly.
        graph = path_graph(3)
        assert exact_hitting(graph, 0, 2, BETA) == pytest.approx(BETA**2)
        assert exact_hitting(graph, 1, 2, BETA) == pytest.approx(BETA)

    def test_unreachable_target_zero(self):
        graph = path_graph(3)
        assert exact_hitting(graph, 2, 0, BETA) == pytest.approx(0.0)

    def test_cycle_analytic(self):
        # On a directed 4-cycle, f from distance d is beta^d.
        graph = cycle_graph(4)
        for d in range(1, 4):
            assert exact_hitting(graph, 0, d, BETA) == pytest.approx(BETA**d)

    def test_branching(self):
        # 0 -> {1, 2}, 1 -> 3, 2 -> 3: f_3(0) = beta * beta = beta^2.
        graph = from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        assert exact_hitting(graph, 0, 3, BETA) == pytest.approx(BETA**2)

    def test_invalid_beta(self, cyclic_graph):
        with pytest.raises(ValueError):
            exact_hitting(cyclic_graph, 0, 1, beta=1.0)

    def test_out_of_range(self, cyclic_graph):
        with pytest.raises(ValueError):
            exact_hitting(cyclic_graph, 0, 99)


class TestScheduledHitting:
    def hub_mask(self, graph, hubs):
        mask = np.zeros(graph.num_nodes, dtype=bool)
        mask[list(hubs)] = True
        return mask

    def test_no_hubs_matches_exact(self, cyclic_graph):
        mask = self.hub_mask(cyclic_graph, [])
        for target in range(cyclic_graph.num_nodes):
            estimate = scheduled_hitting(
                cyclic_graph, 0, target, mask, BETA, epsilon=1e-12
            )
            expected = exact_hitting(cyclic_graph, 0, target, BETA)
            assert estimate.value == pytest.approx(expected, abs=1e-6)

    def test_with_hubs_matches_exact(self, cyclic_graph):
        mask = self.hub_mask(cyclic_graph, [1, 2])
        for query in range(cyclic_graph.num_nodes):
            estimate = scheduled_hitting(
                cyclic_graph, query, 3, mask, BETA, max_levels=80, epsilon=1e-12
            )
            expected = exact_hitting(cyclic_graph, query, 3, BETA)
            assert estimate.value == pytest.approx(expected, abs=1e-6)

    def test_fig1_graph_with_hubs(self, fig1_graph, fig1_hub_mask):
        for target in (2, 4):
            estimate = scheduled_hitting(
                fig1_graph, 0, target, fig1_hub_mask, BETA,
                max_levels=30, epsilon=1e-12,
            )
            expected = exact_hitting(fig1_graph, 0, target, BETA)
            assert estimate.value == pytest.approx(expected, abs=1e-9)

    def test_history_monotone(self, fig1_graph, fig1_hub_mask):
        estimate = scheduled_hitting(
            fig1_graph, 0, 2, fig1_hub_mask, BETA, epsilon=1e-12
        )
        assert all(
            b >= a - 1e-15 for a, b in zip(estimate.history, estimate.history[1:])
        )

    def test_bracket_contains_exact(self, fig1_graph, fig1_hub_mask):
        # value <= exact <= value + remaining_mass after any level budget.
        exact = exact_hitting(fig1_graph, 0, 2, BETA)
        for levels in range(4):
            estimate = scheduled_hitting(
                fig1_graph, 0, 2, fig1_hub_mask, BETA,
                max_levels=levels, epsilon=1e-12,
            )
            assert estimate.value <= exact + 1e-9
            assert estimate.value + estimate.remaining_mass >= exact - 1e-9

    def test_query_equals_target(self, fig1_graph, fig1_hub_mask):
        estimate = scheduled_hitting(fig1_graph, 2, 2, fig1_hub_mask, BETA)
        assert estimate.value == pytest.approx(1.0)

    def test_wrong_mask_shape(self, fig1_graph):
        with pytest.raises(ValueError):
            scheduled_hitting(fig1_graph, 0, 2, np.zeros(3, dtype=bool))

    def test_first_passage_not_full_reachability(self):
        # 0 -> 1 -> 2 -> 1: tours reaching 1 a second time must not count.
        graph = from_edges([(0, 1), (1, 2), (2, 1)])
        mask = np.zeros(3, dtype=bool)
        estimate = scheduled_hitting(graph, 0, 1, mask, BETA, epsilon=1e-12)
        # Only the direct step counts: f_1(0) = beta.
        assert estimate.value == pytest.approx(BETA, abs=1e-9)


class TestScheduledCommute:
    def test_commute_is_product_of_legs(self, cyclic_graph):
        from repro.core.hitting import scheduled_commute

        mask = np.zeros(cyclic_graph.num_nodes, dtype=bool)
        mask[1] = True
        commute = scheduled_commute(
            cyclic_graph, 0, 2, mask, BETA, max_levels=60, epsilon=1e-12
        )
        forward = exact_hitting(cyclic_graph, 0, 2, BETA)
        backward = exact_hitting(cyclic_graph, 2, 0, BETA)
        assert commute.value == pytest.approx(forward * backward, abs=1e-6)

    def test_commute_bracket_contains_exact(self, fig1_graph, fig1_hub_mask):
        from repro.core.hitting import scheduled_commute

        exact = exact_hitting(fig1_graph, 0, 2, BETA) * exact_hitting(
            fig1_graph, 2, 0, BETA
        )
        for levels in (0, 1, 3):
            estimate = scheduled_commute(
                fig1_graph, 0, 2, fig1_hub_mask, BETA,
                max_levels=levels, epsilon=1e-12,
            )
            assert estimate.value <= exact + 1e-9
            assert estimate.value + estimate.remaining_mass >= exact - 1e-9

    def test_commute_symmetric(self, cyclic_graph):
        from repro.core.hitting import scheduled_commute

        mask = np.zeros(cyclic_graph.num_nodes, dtype=bool)
        a = scheduled_commute(cyclic_graph, 0, 2, mask, BETA, epsilon=1e-12)
        b = scheduled_commute(cyclic_graph, 2, 0, mask, BETA, epsilon=1e-12)
        assert a.value == pytest.approx(b.value, abs=1e-9)

    def test_commute_history_monotone(self, fig1_graph, fig1_hub_mask):
        from repro.core.hitting import scheduled_commute

        estimate = scheduled_commute(
            fig1_graph, 0, 3, fig1_hub_mask, BETA, epsilon=1e-12
        )
        assert all(
            later >= earlier - 1e-15
            for earlier, later in zip(estimate.history, estimate.history[1:])
        )
