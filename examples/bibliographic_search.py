"""Scenario 1 of the paper's introduction: bibliographic search.

"Given a paper, who are the best matching experts to review it?"  The
query is a paper node in an author-paper-venue network; the answer is a
ranking over author nodes.  We also show a multi-node query (paper plus
its venue) via the Linearity Theorem.

Run with:  python examples/bibliographic_search.py
"""

from repro import FastPPV, StopAfterIterations, build_index, multi_node_ppv, select_hubs
from repro.graph.generators import bibliographic_graph


def main() -> None:
    bib = bibliographic_graph(
        num_authors=1500, num_papers=3000, num_venues=50, seed=21
    )
    graph = bib.graph
    print(f"bibliographic network: {graph} "
          f"({bib.num_authors} authors, {bib.num_papers} papers, "
          f"{bib.num_venues} venues)")

    hubs = select_hubs(graph, num_hubs=150)
    index = build_index(graph, hubs)
    engine = FastPPV(graph, index)

    # The paper under review: pick one with several co-authors.
    paper = bib.paper_node(42)
    authors_of_paper = [
        int(v) for v in graph.out_neighbors(paper)
        if bib.node_kind(int(v)) == "author"
    ]
    print(f"\nquery: paper node {paper} (authors: {authors_of_paper})")

    result = engine.query(paper, stop=StopAfterIterations(3))

    # Rank *author* nodes only, excluding the paper's own authors
    # (they cannot review their own work).
    conflicted = set(authors_of_paper)
    ranked = [
        node
        for node in result.top_k(100)
        if bib.node_kind(int(node)) == "author" and int(node) not in conflicted
    ]
    print("\nbest-matching reviewers (authors, conflicts excluded):")
    for rank, node in enumerate(ranked[:10], start=1):
        print(f"  {rank:2d}. author {node:5d}  score {result.scores[node]:.5f}")

    # Multi-node query: personalise on the paper AND its venue, weighting
    # the paper 3x.  The Linearity Theorem makes this a weighted sum of
    # single-node queries.
    venue = next(
        int(v) for v in graph.out_neighbors(paper)
        if bib.node_kind(int(v)) == "venue"
    )
    combined = multi_node_ppv(
        engine, [paper, venue], weights=[3.0, 1.0],
        stop=StopAfterIterations(2),
    )
    ranked = [
        node
        for node in combined.top_k(100)
        if bib.node_kind(int(node)) == "author" and int(node) not in conflicted
    ]
    print(f"\nreviewers for the multi-node query (paper {paper} + venue {venue}):")
    for rank, node in enumerate(ranked[:10], start=1):
        print(f"  {rank:2d}. author {node:5d}  score {combined.scores[node]:.5f}")


if __name__ == "__main__":
    main()
