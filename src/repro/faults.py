"""Deterministic fault injection for the serving/server/pool stack.

A :class:`FaultPlan` is a seedable schedule of failures that tests thread
into the components under test: fail (or delay) the Nth disk read, make
the scheduler's executor raise, tear a server frame mid-write, SIGKILL a
pool worker after m requests.  Components accept an optional
``fault_plan`` and call :meth:`FaultPlan.fire` at named **sites**; when
no plan is installed the hook is a single ``is None`` check, so the hot
path is untouched.

Sites wired into the stack
--------------------------
The full registry; components name their sites here so suites can grep
one table instead of the codebase.

=====================  ===================================================
site                   fired …
=====================  ===================================================
``ppv_store.read``     per :meth:`DiskPPVStore.get` /
                       per unique read of ``get_many``
``graph_store.load``   per cluster segment actually loaded from disk
                       (LRU swap-ins and shard ``cluster_arrays`` reads)
``scheduler.execute``  per drain, just before the executor runs
``server.request``     per parsed request line, before dispatch
``server.send``        per response frame, before the write
``client.connect``     on :class:`PPVClient` construction
``client.send``        per client request line written
``client.recv``        per client response line read
``router.dispatch``    per shard request a :class:`~repro.sharding.
                       ShardFleet` fans out, before the send
``router.connect``     per shard (re)connection the fleet opens
``shard.recv``         per shard reply the fleet reads (first try and
                       the reconnect retry)
=====================  ===================================================

The three ``router.*``/``shard.*`` sites live on the *router's* fleet
(install the plan via ``RouterEngine(fault_plan=...)``), not on the
per-shard ``PPVClient`` connections — the generic ``client.*`` sites
stay quiet during fan-out so a rule there cannot double-fire.

Rules
-----
:meth:`FaultPlan.on` arms one rule::

    plan = FaultPlan()
    plan.on("ppv_store.read", nth=3)                  # 3rd read raises
    plan.on("scheduler.execute", delay=0.05, times=2) # 2 slow drains
    plan.on("server.send", after=5, torn=True)        # tear frame 6
    plan.on("server.request", after=10, kill=True)    # SIGKILL worker

Trigger selection: ``nth=k`` fires on exactly the k-th hit (1-based) of
that site; ``after=m`` fires on every hit past the first m (bounded by
``times``); ``probability=p`` gates each eligible hit on the plan's
seeded RNG, making random-looking schedules reproducible.  A rule
disarms after ``times`` triggers (``times=None`` never disarms).

Trigger action, in order: sleep ``delay`` seconds if given; SIGKILL the
*current process* if ``kill`` (pool tests run this in a forked worker);
return a truthy :class:`FaultAction` if ``torn`` (the transport caller
writes a truncated frame and drops the connection); otherwise raise
``error`` (default :class:`InjectedFault`).  A pure ``delay`` rule
raises nothing — it only stalls.

Every trigger is recorded in :attr:`FaultPlan.fired` so tests can assert
the schedule actually happened (a fault that never fires is a test that
proves nothing).
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time
from dataclasses import dataclass, field


class InjectedFault(RuntimeError):
    """The default error raised by a triggered fault rule."""


@dataclass
class FaultAction:
    """What a triggered rule asks its call site to do.

    Only returned (rather than raised) for effects the *caller* must
    implement — currently ``torn`` frame writes.  Truthy so transports
    can write ``if plan.fire(site): <tear>``.
    """

    site: str
    torn: bool = False

    def __bool__(self) -> bool:  # pragma: no cover - trivial
        return True


@dataclass
class FaultRule:
    """One armed fault (see :meth:`FaultPlan.on` for field semantics)."""

    site: str
    nth: int | None = None
    after: int = 0
    probability: float | None = None
    error: "BaseException | type[BaseException] | None" = None
    delay: float = 0.0
    torn: bool = False
    kill: bool = False
    times: int | None = 1
    hits: int = 0
    triggered: int = 0

    def _matches(self, hit: int, rng: random.Random) -> bool:
        if self.times is not None and self.triggered >= self.times:
            return False
        if self.nth is not None:
            if hit != self.nth:
                return False
        elif hit <= self.after:
            return False
        if self.probability is not None and rng.random() >= self.probability:
            return False
        return True


@dataclass
class FiredFault:
    """One recorded trigger: which rule, which hit, caller context."""

    site: str
    rule: FaultRule
    hit: int
    context: dict = field(default_factory=dict)


class FaultPlan:
    """A seedable, thread-safe schedule of injected faults.

    Parameters
    ----------
    seed:
        Seeds the RNG behind ``probability`` rules; two plans built with
        the same seed and rules trigger identically.
    """

    def __init__(self, seed: int | None = None) -> None:
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._rules: list[FaultRule] = []
        self._site_hits: dict = {}
        self.fired: list[FiredFault] = []

    def on(
        self,
        site: str,
        *,
        nth: int | None = None,
        after: int = 0,
        probability: float | None = None,
        error: "BaseException | type[BaseException] | None" = None,
        delay: float = 0.0,
        torn: bool = False,
        kill: bool = False,
        times: int | None = 1,
    ) -> FaultRule:
        """Arm one rule at ``site`` and return it.

        ``nth`` fires on exactly that hit (1-based); otherwise hits
        past ``after`` are eligible.  ``probability`` gates eligible
        hits on the seeded RNG.  The rule disarms after ``times``
        triggers (``None``: never).  Action on trigger: sleep
        ``delay``; then ``kill`` (SIGKILL own process) or ``torn``
        (return a :class:`FaultAction`) or raise ``error`` (class or
        instance; default :class:`InjectedFault`) — a pure-``delay``
        rule returns ``None`` instead of raising.
        """
        if nth is not None and nth < 1:
            raise ValueError("nth is 1-based and must be >= 1")
        rule = FaultRule(
            site=site,
            nth=nth,
            after=after,
            probability=probability,
            error=error,
            delay=delay,
            torn=torn,
            kill=kill,
            times=times,
        )
        with self._lock:
            self._rules.append(rule)
        return rule

    def hits(self, site: str) -> int:
        """How many times ``site`` has fired (triggered or not)."""
        with self._lock:
            return self._site_hits.get(site, 0)

    def fire(self, site: str, **context) -> FaultAction | None:
        """Report one hit of ``site``; trigger matching rules.

        Returns a :class:`FaultAction` for caller-implemented effects
        (``torn``), ``None`` when nothing (or only a delay) triggered.
        Raises the rule's error otherwise.  Components guard the call
        with ``if plan is not None`` so an uninstrumented run never
        enters here.
        """
        triggered: list[tuple[FaultRule, int]] = []
        with self._lock:
            hit = self._site_hits.get(site, 0) + 1
            self._site_hits[site] = hit
            for rule in self._rules:
                if rule.site != site:
                    continue
                rule.hits += 1
                if rule._matches(hit, self._rng):
                    rule.triggered += 1
                    self.fired.append(FiredFault(site, rule, hit, context))
                    triggered.append((rule, hit))
        if triggered:
            # Triggered faults show up as events on the active trace
            # span (if any), so an injected failure is visible in the
            # span tree of the query it hit.  Lazy import: repro.faults
            # must stay importable without repro.obs on the path.
            try:
                from repro.obs.trace import current_span
            except ImportError:  # pragma: no cover
                current_span = None
            span = current_span() if current_span is not None else None
            if span is not None:
                for rule, rule_hit in triggered:
                    span.event("fault", site=site, hit=rule_hit)
        action: FaultAction | None = None
        error: BaseException | None = None
        for rule, _ in triggered:
            if rule.delay > 0:
                time.sleep(rule.delay)
            if rule.kill:
                os.kill(os.getpid(), signal.SIGKILL)
            if rule.torn:
                action = FaultAction(site=site, torn=True)
                continue
            if rule.error is None and rule.delay > 0:
                continue  # pure slowdown: stall, don't fail
            if error is None:
                raised = rule.error
                if raised is None:
                    raised = InjectedFault(f"injected fault at {site!r}")
                elif isinstance(raised, type):
                    raised = raised(f"injected fault at {site!r}")
                error = raised
        if error is not None:
            raise error
        return action

    def fired_at(self, site: str) -> list[FiredFault]:
        """The recorded triggers of one site, in order."""
        with self._lock:
            return [record for record in self.fired if record.site == site]


def fire(plan: FaultPlan | None, site: str, **context) -> FaultAction | None:
    """``plan.fire(site)`` guarded for the common ``plan is None`` case."""
    if plan is None:
        return None
    return plan.fire(site, **context)
