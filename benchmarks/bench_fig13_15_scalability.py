"""Figs. 13-15: scalability — growth series, near-constant online time,
linear offline cost."""

import numpy as np
import pytest

from benchmarks.common import BENCH_SCALE, emit
from repro.experiments import dblp_graph, livejournal_graph
from repro.experiments.fig13_15_scalability import (
    fig13_table,
    fig14_table,
    fig15_table,
    run_sample_scalability,
    run_snapshot_scalability,
)
from repro.graph.sampling import snapshot


@pytest.fixture(scope="module")
def scalability():
    bib = dblp_graph(scale=BENCH_SCALE)
    snapshots = run_snapshot_scalability(
        bib, years=(1998, 2002, 2006, 2010), num_queries=15
    )
    social = livejournal_graph(scale=BENCH_SCALE)
    samples = run_sample_scalability(
        social, fractions=(0.25, 0.5, 0.75, 1.0), num_queries=15
    )
    return bib, snapshots, samples


def test_fig13_15_scalability(benchmark, scalability):
    bib, snapshots, samples = scalability
    emit(
        "fig13_15_scalability",
        fig13_table(snapshots, "DBLP"),
        fig14_table(snapshots, "DBLP"),
        fig15_table(snapshots, "DBLP"),
        fig13_table(samples, "LiveJournal"),
        fig14_table(samples, "LiveJournal"),
        fig15_table(samples, "LiveJournal"),
    )

    for points in (snapshots, samples):
        sizes = [p.num_nodes + p.num_edges for p in points]
        assert sizes == sorted(sizes)  # the series grows
        # Near-constant online time once past the smallest (noise-prone)
        # graph: the later points stay within a 3x band of one another
        # while graph size grows ~4x (paper: flat).
        times = [p.outcome.online_ms_per_query for p in points[1:]]
        assert max(times) <= min(times) * 3.0
        # Offline cost grows at most ~linearly in graph size: time per
        # size unit must not inflate by more than 2.5x from the second
        # point on (the sparsest sample is fragmented and degenerate).
        per_unit = [
            p.offline.build_seconds / (p.num_nodes + p.num_edges) for p in points
        ]
        assert per_unit[-1] <= per_unit[1] * 2.5 + 1e-9
        # Accuracy stays robust across the series.
        precisions = [p.outcome.accuracy.precision for p in points]
        assert min(precisions) >= max(precisions) - 0.15

    # Check the offline-space linearity numerically (correlation of space
    # with size across both series).
    sizes = np.array(
        [p.num_nodes + p.num_edges for p in snapshots + samples], dtype=float
    )
    spaces = np.array(
        [p.offline.megabytes for p in snapshots + samples], dtype=float
    )
    assert np.corrcoef(sizes, spaces)[0, 1] > 0.7

    # Timing record: cutting the largest snapshot.
    benchmark(lambda: snapshot(bib, 2010))
