"""Baseline PPV methods the paper compares against (Sect. 6, "Baselines").

* :class:`~repro.baselines.hubrank.HubRankP` — the strongest
  reuse-computation baseline (Chakrabarti et al. [7]): bookmark-coloring
  forward push with full hub PPVs precomputed offline and spliced online,
  hubs chosen by a benefit model under a uniform query log.
* :class:`~repro.baselines.montecarlo.MonteCarlo` — the fingerprint method
  of Fogaras et al. [8]: offline fingerprint endpoints for hub nodes,
  online walks that terminate early by sampling a hub fingerprint.

Both expose ``query(node) -> BaselineResult`` and an ``offline_stats``
attribute mirroring :class:`repro.core.index.IndexStats`, so the
experiment harness can drive all three methods uniformly.
"""

from repro.baselines.hubrank import HubRankP
from repro.baselines.montecarlo import MonteCarlo
from repro.baselines.push import forward_push
from repro.baselines.result import BaselineResult

__all__ = ["forward_push", "HubRankP", "MonteCarlo", "BaselineResult"]
