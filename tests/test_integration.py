"""End-to-end integration tests across subsystems.

Each test exercises a complete user journey: generate data, build the
offline index, run online queries, score them, and cross-check the
different engines against one another.
"""

import numpy as np
import pytest

from repro import (
    FastPPV,
    StopAfterIterations,
    StopAtL1Error,
    build_index,
    exact_ppv,
    multi_node_ppv,
    select_hubs,
)
from repro.baselines import HubRankP, MonteCarlo
from repro.core.dynamic import add_edges, update_index
from repro.experiments import make_workload, run_fastppv
from repro.graph.generators import bibliographic_graph
from repro.metrics import evaluate_accuracy
from repro.storage import (
    DiskFastPPV,
    DiskGraphStore,
    DiskPPVStore,
    cluster_graph,
    load_index,
    save_index,
)


class TestFullPipeline:
    def test_offline_online_accuracy(self, small_social):
        hubs = select_hubs(small_social, 40)
        index = build_index(small_social, hubs)
        engine = FastPPV(small_social, index, delta=0.0)
        workload = make_workload(small_social, num_queries=10, seed=4)
        for query, exact in workload:
            result = engine.query(query, stop=StopAfterIterations(4))
            report = evaluate_accuracy(exact, result.scores)
            assert report.precision >= 0.8
            assert report.l1_similarity >= 0.8

    def test_all_three_methods_agree_on_top1(self, small_social):
        # At generous budgets, all engines should at least agree that the
        # query node itself tops its own PPV.
        hubs = select_hubs(small_social, 40)
        index = build_index(small_social, hubs)
        fastppv = FastPPV(small_social, index)
        hubrank = HubRankP(small_social, num_hubs=40, push_threshold=1e-5)
        montecarlo = MonteCarlo(
            small_social, num_hubs=40, samples_per_query=2000, seed=0
        )
        for query in (3, 77, 200):
            assert fastppv.query(query).top_k(1)[0] == query
            assert hubrank.query(query).top_k(1)[0] == query
            assert montecarlo.query(query).top_k(1)[0] == query

    def test_bibliographic_scenario(self, small_bib):
        # Scenario 1: querying a paper ranks its own authors highly.
        graph = small_bib.graph
        hubs = select_hubs(graph, 30)
        index = build_index(graph, hubs)
        engine = FastPPV(graph, index)
        paper = small_bib.paper_node(5)
        result = engine.query(paper, stop=StopAfterIterations(3))
        authors = {
            int(v)
            for v in graph.out_neighbors(paper)
            if small_bib.node_kind(int(v)) == "author"
        }
        top = set(result.top_k(len(authors) + 5).tolist())
        assert authors & top  # co-authors appear among the top nodes

    def test_disk_pipeline_roundtrip(self, small_social, tmp_path):
        hubs = select_hubs(small_social, 30)
        index = build_index(small_social, hubs)
        path = tmp_path / "index.fppv"
        save_index(index, path)

        # In-memory reload answers identically.
        reloaded = load_index(path)
        a = FastPPV(small_social, index, delta=0.0).query(9)
        b = FastPPV(small_social, reloaded, delta=0.0).query(9)
        np.testing.assert_allclose(a.scores, b.scores, atol=0)

        # Disk engine agrees with the in-memory engine.
        assignment = cluster_graph(small_social, 5, seed=2)
        store = DiskGraphStore(small_social, assignment, tmp_path / "clusters")
        with DiskPPVStore(path) as ppv_store:
            disk_engine = DiskFastPPV(store, ppv_store, delta=0.0,
                                      fault_budget=10**9)
            non_hub = next(
                q for q in range(small_social.num_nodes) if q not in index
            )
            disk_result = disk_engine.query(non_hub, stop=StopAfterIterations(2))
        memory_result = FastPPV(small_social, index, delta=0.0).query(
            non_hub, stop=StopAfterIterations(2)
        )
        # Disk and memory engines agree up to their (different) epsilon
        # truncation patterns; see tests/test_disk_engine.py.
        assert np.abs(disk_result.scores - memory_result.scores).max() < 1e-3

    def test_dynamic_then_query(self, small_social):
        hubs = select_hubs(small_social, 30)
        index = build_index(small_social, hubs)
        new_graph = add_edges(small_social, [(1, 390), (390, 1)])
        updated, _ = update_index(small_social, new_graph, index)
        engine = FastPPV(new_graph, updated, delta=0.0)
        result = engine.query(1, stop=StopAfterIterations(6))
        exact = exact_ppv(new_graph, 1)
        assert np.abs(result.scores - exact).sum() < 0.05

    def test_multi_node_query_pipeline(self, small_social, small_social_index):
        engine = FastPPV(small_social, small_social_index)
        result = multi_node_ppv(
            engine, [10, 20, 30], stop=StopAfterIterations(2)
        )
        assert result.scores.sum() <= 1.0 + 1e-9
        assert result.scores[10] > 0 and result.scores[20] > 0

    def test_accuracy_target_journey(self, small_social, small_social_index):
        engine = FastPPV(small_social, small_social_index, delta=0.0)
        result = engine.query(50, stop=StopAtL1Error(0.1))
        exact = exact_ppv(small_social, 50)
        assert np.abs(result.scores - exact).sum() <= 0.1 + 0.02

    def test_runner_consistency_with_direct_engine(self, small_social):
        workload = make_workload(small_social, num_queries=5, seed=7)
        hubs = select_hubs(small_social, 30)
        index = build_index(small_social, hubs)
        outcome = run_fastppv(
            small_social, workload, num_hubs=30, eta=2, index=index,
            delta=0.0, online_epsilon=index.epsilon,
        )
        engine = FastPPV(small_social, index, delta=0.0)
        reports = [
            evaluate_accuracy(
                exact, engine.query(q, stop=StopAfterIterations(2)).scores
            )
            for q, exact in workload
        ]
        mean_precision = float(np.mean([r.precision for r in reports]))
        assert outcome.accuracy.precision == pytest.approx(mean_precision)


class TestDeterminism:
    def test_full_pipeline_deterministic(self):
        results = []
        for _ in range(2):
            bib = bibliographic_graph(
                num_authors=60, num_papers=120, num_venues=8, seed=5
            )
            hubs = select_hubs(bib.graph, 15)
            index = build_index(bib.graph, hubs)
            engine = FastPPV(bib.graph, index)
            results.append(engine.query(3, stop=StopAfterIterations(2)).scores)
        np.testing.assert_array_equal(results[0], results[1])
