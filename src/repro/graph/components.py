"""Connectivity: strongly and weakly connected components.

Random-walk measures behave differently across components — PPV mass
cannot leave the query's reachable set, and clustering/scaling studies
want to know how fragmented a sampled graph is (the sparsest LiveJournal
samples in Fig. 13(b) are noticeably fragmented).  Tarjan's algorithm is
implemented iteratively: recursion on a 10^5-node path would blow the
Python stack.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.digraph import DiGraph


@dataclass(frozen=True)
class Components:
    """A partition of nodes into components.

    Attributes
    ----------
    labels:
        Component id of every node (``0 .. count - 1``); ids are ordered
        by first appearance during the traversal.
    count:
        Number of components.
    """

    labels: np.ndarray
    count: int

    def members(self, component: int) -> np.ndarray:
        """Node ids belonging to ``component``."""
        return np.nonzero(self.labels == component)[0]

    def sizes(self) -> np.ndarray:
        """Node count per component."""
        return np.bincount(self.labels, minlength=self.count)

    def largest(self) -> np.ndarray:
        """Node ids of the largest component (ties: lowest id)."""
        if self.count == 0:
            return np.empty(0, dtype=np.int64)
        return self.members(int(np.argmax(self.sizes())))


def strongly_connected_components(graph: DiGraph) -> Components:
    """Tarjan's SCC algorithm, iteratively.

    Runs in ``O(|V| + |E|)``.  Component ids follow reverse topological
    order of the condensation (a property of Tarjan's algorithm).
    """
    n = graph.num_nodes
    indptr, indices = graph.indptr, graph.indices
    index_of = -np.ones(n, dtype=np.int64)  # discovery index
    lowlink = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    labels = -np.ones(n, dtype=np.int64)
    stack: list[int] = []
    next_index = 0
    component_count = 0

    for root in range(n):
        if index_of[root] >= 0:
            continue
        # Each frame: (node, next out-edge offset to try).
        work = [(root, int(indptr[root]))]
        index_of[root] = lowlink[root] = next_index
        next_index += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, edge = work[-1]
            if edge < indptr[node + 1]:
                work[-1] = (node, edge + 1)
                child = int(indices[edge])
                if index_of[child] < 0:
                    index_of[child] = lowlink[child] = next_index
                    next_index += 1
                    stack.append(child)
                    on_stack[child] = True
                    work.append((child, int(indptr[child])))
                elif on_stack[child]:
                    lowlink[node] = min(lowlink[node], index_of[child])
            else:
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index_of[node]:
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        labels[member] = component_count
                        if member == node:
                            break
                    component_count += 1
    return Components(labels=labels, count=component_count)


def weakly_connected_components(graph: DiGraph) -> Components:
    """Connected components of the undirected version of the graph."""
    n = graph.num_nodes
    labels = -np.ones(n, dtype=np.int64)
    reverse = graph.reverse()
    count = 0
    for root in range(n):
        if labels[root] >= 0:
            continue
        labels[root] = count
        frontier = [root]
        while frontier:
            node = frontier.pop()
            for neighbor in graph.out_neighbors(node):
                if labels[neighbor] < 0:
                    labels[neighbor] = count
                    frontier.append(int(neighbor))
            for neighbor in reverse.out_neighbors(node):
                if labels[neighbor] < 0:
                    labels[neighbor] = count
                    frontier.append(int(neighbor))
        count += 1
    return Components(labels=labels, count=count)


def largest_strongly_connected_subgraph(
    graph: DiGraph,
) -> tuple[DiGraph, np.ndarray]:
    """The node-induced subgraph of the largest SCC.

    Returns ``(subgraph, node_map)`` as :meth:`DiGraph.subgraph` does.
    Useful for experiments that need every PPV to be a full probability
    distribution (no mass escaping into sink components).
    """
    components = strongly_connected_components(graph)
    return graph.subgraph(components.largest())
