"""The shard side of sharded serving: a data-plane engine.

A shard process is an ordinary :class:`~repro.server.PPVServer` worker
(usually a whole :class:`~repro.server.pool.ServerPool`) whose engine
is a :class:`ShardEngine` over one shard directory produced by
:func:`repro.sharding.partition.partition_index`.  It serves no queries
of its own — all scoring runs at the router, so every byte a shard
ships is a verbatim read of its stores — just the three data verbs:

``fetch_hubs``
    Raw prime-PPV entries (``nodes`` / ``scores`` / ``border_hubs`` /
    ``border_masses``) of the requested owned hubs.
``fetch_cluster``
    One owned cluster's stored adjacency arrays (``nodes`` /
    ``offsets`` / ``targets`` / ``probs``), bypassing the LRU — a
    fetch is a read of the stored bytes, not a swap-in.
``shard_info``
    The shard's partition coordinates (from ``shard.json``) plus the
    global cluster labels, from which the router bootstraps without
    ever reading the partition root itself.

Query verbs are refused with a structured ``invalid`` error pointing at
the router.  Fetches run under one lock: the TCP front-end executes
them on ``asyncio.to_thread`` workers, and the underlying stores share
seekable file handles that must not interleave.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

from repro.serving.engines import register_backend
from repro.storage.disk_engine import DiskGraphStore
from repro.storage.ppv_store import DiskPPVStore

from repro.sharding.partition import SHARD_META_NAME


def _encode_entry(entry) -> dict:
    """One :class:`~repro.core.prime.PrimePPV` as JSON-able arrays.

    ``tolist`` yields Python ints/floats and JSON prints floats
    shortest-round-trip, so the router's decode is bit-exact.
    """
    return {
        "nodes": entry.nodes.tolist(),
        "scores": entry.scores.tolist(),
        "border_hubs": entry.border_hubs.tolist(),
        "border_masses": entry.border_masses.tolist(),
    }


class ShardEngine:
    """Serve one shard directory's stores to a shard router.

    Implements just enough of the :class:`~repro.serving.engines.Engine`
    protocol to sit behind ``PPVService``/``PPVServer`` (lifecycle,
    ``num_nodes``, ``cache_token``); the query methods refuse, and the
    real surface is :meth:`fetch_hubs` / :meth:`fetch_cluster` /
    :meth:`shard_info`.
    """

    backend = "shard"

    def __init__(self, shard_dir, *, fault_plan=None) -> None:
        self.shard_dir = Path(shard_dir)
        self.fault_plan = fault_plan
        self._lock = threading.Lock()
        self.meta = self._read_meta(self.shard_dir)
        self.shard = int(self.meta["shard"])
        self.num_shards = int(self.meta["num_shards"])
        self.ppv_store = DiskPPVStore(
            self.shard_dir / "index.fppv", fault_plan=fault_plan
        )
        self.graph_store = DiskGraphStore.open(
            self.shard_dir / "graph", fault_plan=fault_plan
        )

    @staticmethod
    def _read_meta(shard_dir: Path) -> dict:
        meta_path = shard_dir / SHARD_META_NAME
        if not meta_path.exists():
            raise FileNotFoundError(
                f"no {SHARD_META_NAME} under {shard_dir}; not a shard "
                "directory (build one with partition_index / repro "
                "shard-index)"
            )
        return json.loads(meta_path.read_text())

    # ------------------------------------------------------------------ #
    # Engine protocol (lifecycle only)

    @property
    def num_nodes(self) -> int:
        return self.graph_store.num_nodes

    def _refuse(self):
        raise ValueError(
            f"shard {self.shard} serves data, not queries; query "
            "through the shard router"
        )

    def query_batch(self, nodes, stop):
        self._refuse()

    def query_top_k_batch(self, nodes, k, budget):
        self._refuse()

    def query_stream(self, node, stop, on_iteration):
        self._refuse()

    def cache_token(self) -> object:
        return self.ppv_store

    def close(self) -> None:
        self.ppv_store.close()

    # ------------------------------------------------------------------ #
    # Data verbs

    def fetch_hubs(self, hubs) -> dict:
        """Raw prime-PPV entries of ``hubs``, keyed by hub id (as JSON
        string keys on the wire).

        Raises :class:`KeyError` for a hub this shard does not own —
        the front-end renders that as a structured ``invalid`` error.
        """
        with self._lock:
            entries = self.ppv_store.get_many(hubs)
        return {str(hub): _encode_entry(entry) for hub, entry in entries.items()}

    def fetch_cluster(self, cluster: int) -> dict:
        """One owned cluster's stored adjacency arrays.

        Raises :class:`ValueError` for a cluster stored elsewhere.
        """
        with self._lock:
            arrays = self.graph_store.cluster_arrays(int(cluster))
        return {
            "nodes": arrays["nodes"].tolist(),
            "offsets": arrays["offsets"].tolist(),
            "targets": arrays["targets"].tolist(),
            "probs": arrays["probs"].tolist(),
        }

    def shard_info(self) -> dict:
        """Partition coordinates + global labels for router bootstrap."""
        with self._lock:
            labels = self.graph_store.labels.tolist()
        info = dict(self.meta)
        info.pop("index_bytes", None)
        info.pop("graph_bytes", None)
        info["labels"] = labels
        return info

    # ------------------------------------------------------------------ #
    # Hot swap

    def replace_from_path(self, path) -> None:
        """Reopen this shard's stores from a (new) shard directory.

        The router rolls a partition swap by sending each shard its own
        ``root/shard_NN`` path; the shard id and shard count must match
        this process's slice so a fleet can never end up serving two
        different partitions' coordinates under one id.
        """
        shard_dir = Path(path)
        meta = self._read_meta(shard_dir)
        if int(meta["shard"]) != self.shard:
            raise ValueError(
                f"shard directory {shard_dir} holds shard {meta['shard']}, "
                f"but this process serves shard {self.shard}"
            )
        if int(meta["num_shards"]) != self.num_shards:
            raise ValueError(
                f"partition at {shard_dir} has {meta['num_shards']} shards, "
                f"but this fleet runs {self.num_shards}"
            )
        ppv_store = DiskPPVStore(
            shard_dir / "index.fppv", fault_plan=self.fault_plan
        )
        try:
            graph_store = DiskGraphStore.open(
                shard_dir / "graph", fault_plan=self.fault_plan
            )
        except (FileNotFoundError, ValueError):
            ppv_store.close()
            raise
        with self._lock:
            old = self.ppv_store
            self.shard_dir = shard_dir
            self.meta = meta
            self.ppv_store = ppv_store
            self.graph_store = graph_store
            old.close()


def shard_service_factory(shard_dir, *, fault_plan=None, obs=True):
    """A zero-argument ``PPVService`` factory for one shard directory —
    the shape :class:`~repro.server.pool.ServerPool` wants.

    The service carries no result cache (a shard never serves results)
    and opens its stores inside the worker, after the fork.  With
    ``obs`` (the default) each worker builds its own
    :class:`~repro.obs.Observability` post-fork, so the shard exports
    store counters in ``stats`` and continues router traces; pass
    ``obs=False`` to strip instrumentation entirely.
    """
    shard_dir = Path(shard_dir)

    def factory():
        from repro.serving.service import PPVService

        observability = None
        if obs:
            from repro.obs import Observability

            observability = Observability()
        return PPVService(
            ShardEngine(shard_dir, fault_plan=fault_plan),
            cache_size=0,
            obs=observability,
        )

    return factory


def _shard_factory(source, *, graph=None, graph_store=None, **kwargs):
    if graph is not None or graph_store is not None:
        raise ValueError(
            "the shard backend opens a shard directory; it takes no "
            "graph=/graph_store="
        )
    return ShardEngine(source, **kwargs)


register_backend("shard", _shard_factory)
